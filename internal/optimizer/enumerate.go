package optimizer

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"galo/internal/qgm"
	"galo/internal/sqlparser"
)

// accessPath is one way to read a quantifier's base table.
type accessPath struct {
	op           qgm.OpType
	indexName    string
	indexCluster float64
	cost         float64
	card         float64
	sortedOn     string // "Qi.COL" when the access produces that order
}

func (a accessPath) usesIndex() bool { return a.op == qgm.OpIXSCAN || a.op == qgm.OpFETCH }

func (a accessPath) clusterRatio() float64 {
	if a.indexCluster == 0 {
		return 0.5
	}
	return a.indexCluster
}

// planCand is a partial plan over a set of quantifier instances. Its order
// property lives on the plan node itself (qgm.Node.OrderedOn), so the
// property survives into the emitted plan and the executor can honour it.
type planCand struct {
	node    *qgm.Node
	cost    float64
	card    float64
	rowSize int
	set     map[string]bool // instance names covered
}

// orderedOn returns the candidate's order property.
func (c *planCand) orderedOn() string {
	if c == nil || c.node == nil {
		return ""
	}
	return c.node.OrderedOn
}

func setKey(set map[string]bool) string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

func unionSets(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func subsetOf(a, b map[string]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func sameSet(a, b map[string]bool) bool {
	return len(a) == len(b) && subsetOf(a, b)
}

// enumerate drives cost-based plan construction, retrying with progressively
// fewer guidelines when the constrained search cannot produce a plan. This is
// the paper's "not all guidelines may be honored" behaviour.
func (o *Optimizer) enumerate(q *sqlparser.Query, quants []*Quantifier, report *Report) (*qgm.Node, error) {
	cons, perGuideline := o.buildConstraints(q, quants, report)
	active := make([]bool, len(perGuideline))
	for i := range active {
		active[i] = true
	}
	for {
		cands := filterConstraints(cons, perGuideline, active)
		root, considered, err := o.enumerateWith(q, quants, cands)
		report.PlansConsidered += considered
		if err == nil {
			o.reportGuidelineOutcome(root, perGuideline, active, report)
			return root, nil
		}
		// Drop the last still-active guideline and retry.
		dropped := false
		for i := len(active) - 1; i >= 0; i-- {
			if active[i] {
				active[i] = false
				dropped = true
				break
			}
		}
		if !dropped {
			return nil, err
		}
	}
}

func (o *Optimizer) reportGuidelineOutcome(root *qgm.Node, perGuideline []guidelineConstraints, active []bool, report *Report) {
	for i, gc := range perGuideline {
		switch {
		case !active[i] || gc.invalid:
			report.GuidelinesIgnored = append(report.GuidelinesIgnored, i)
		case gc.satisfiedBy(root):
			report.GuidelinesApplied = append(report.GuidelinesApplied, i)
		default:
			report.GuidelinesIgnored = append(report.GuidelinesIgnored, i)
		}
	}
}

// enumerateWith builds the join tree honouring the given constraints. It
// returns an error when no complete plan satisfies them.
func (o *Optimizer) enumerateWith(q *sqlparser.Query, quants []*Quantifier, cons constraintSet) (*qgm.Node, int, error) {
	if len(quants) == 0 {
		return nil, 0, fmt.Errorf("optimizer: query references no tables")
	}
	considered := 0
	// Single-table query: best access path only.
	if len(quants) == 1 {
		cand, err := o.bestAccess(q, quants[0], cons)
		if err != nil {
			return nil, 0, err
		}
		return cand.node, 1, nil
	}
	byName := refNameMap(quants)
	if len(quants) <= o.Opts.JoinEnumDPLimit {
		o.lastUsedDP = true
		root, n, err := o.dpEnumerate(q, quants, byName, cons)
		considered += n
		return root, considered, err
	}
	o.lastUsedDP = false
	root, n, err := o.greedyEnumerate(q, quants, byName, cons)
	considered += n
	return root, considered, err
}

func refNameMap(quants []*Quantifier) map[string]*Quantifier {
	m := make(map[string]*Quantifier, len(quants))
	for _, qt := range quants {
		m[strings.ToUpper(qt.Ref.Name())] = qt
		m[qt.Instance] = qt
	}
	return m
}

// --- access path selection --------------------------------------------------

// accessPaths lists the valid ways to read one quantifier, honouring access
// constraints when present.
func (o *Optimizer) accessPaths(q *sqlparser.Query, qt *Quantifier, cons constraintSet) []accessPath {
	cfg := o.Cat.Config
	sel := o.localSelectivity(qt.Ref.Table, qt.LocalPreds)
	outCard := clampCard(qt.RawCard * sel)
	rowsPerPage := math.Max(qt.RawCard/math.Max(qt.Pages, 1), 1)
	var paths []accessPath

	ac, hasAC := cons.access[qt.Instance]

	if !hasAC || ac.method == qgm.OpTBSCAN {
		paths = append(paths, accessPath{
			op:   qgm.OpTBSCAN,
			cost: tbscanCost(cfg, qt.Pages, qt.RawCard),
			card: outCard,
		})
	}
	if qt.Table != nil && (!hasAC || ac.method != qgm.OpTBSCAN) {
		needed := referencedColumns(q, qt)
		for i := range qt.Table.Indexes {
			idx := &qt.Table.Indexes[i]
			if hasAC && ac.index != "" && !strings.EqualFold(ac.index, idx.Name) {
				continue
			}
			lead := idx.Columns[0]
			idxSel := o.leadingColumnSelectivity(qt, lead)
			matchRows := clampCard(qt.RawCard * idxSel)
			indexOnly := coversAll(idx.Columns, needed)
			op := qgm.OpFETCH
			if indexOnly {
				op = qgm.OpIXSCAN
			}
			cost := ixscanCost(cfg, qt.Pages, qt.RawCard, matchRows, idx.ClusterRatio, !indexOnly, rowsPerPage)
			paths = append(paths, accessPath{
				op:           op,
				indexName:    idx.Name,
				indexCluster: idx.ClusterRatio,
				cost:         cost,
				card:         outCard,
				sortedOn:     qt.Instance + "." + lead,
			})
		}
	}
	if len(paths) == 0 {
		// The access constraint could not be satisfied (e.g. IXSCAN requested
		// but the table has no index): fall back to a table scan so that the
		// query can still be planned; the guideline will be reported ignored.
		paths = append(paths, accessPath{
			op:   qgm.OpTBSCAN,
			cost: tbscanCost(cfg, qt.Pages, qt.RawCard),
			card: outCard,
		})
	}
	return paths
}

// leadingColumnSelectivity estimates how selective the quantifier's local
// predicates on the given column are (1.0 when there is none).
func (o *Optimizer) leadingColumnSelectivity(qt *Quantifier, column string) float64 {
	ts := o.Cat.Stats(qt.Ref.Table)
	sel := 1.0
	for _, p := range qt.LocalPreds {
		if strings.EqualFold(p.Left.Column, column) {
			sel *= o.predicateSelectivity(ts, p)
		}
	}
	return clampSel(sel)
}

// referencedColumns returns the columns of the quantifier's table referenced
// anywhere in the query.
func referencedColumns(q *sqlparser.Query, qt *Quantifier) []string {
	name := strings.ToUpper(qt.Ref.Name())
	seen := map[string]struct{}{}
	add := func(c sqlparser.ColumnRef) {
		if strings.EqualFold(c.Table, name) {
			seen[strings.ToUpper(c.Column)] = struct{}{}
		}
	}
	for _, c := range q.Select {
		add(c)
	}
	for _, p := range q.Where {
		add(p.Left)
		if p.Kind == sqlparser.PredJoin {
			add(p.Right)
		}
	}
	for _, c := range q.GroupBy {
		add(c)
	}
	for _, c := range q.OrderBy {
		add(c)
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func coversAll(indexCols, needed []string) bool {
	have := map[string]bool{}
	for _, c := range indexCols {
		have[strings.ToUpper(c)] = true
	}
	for _, c := range needed {
		if !have[strings.ToUpper(c)] {
			return false
		}
	}
	return true
}

// bestAccess returns the cheapest access path wrapped as a plan candidate.
func (o *Optimizer) bestAccess(q *sqlparser.Query, qt *Quantifier, cons constraintSet) (*planCand, error) {
	paths := o.accessPaths(q, qt, cons)
	best := paths[0]
	for _, p := range paths[1:] {
		if p.cost < best.cost {
			best = p
		}
	}
	return o.accessCand(qt, best), nil
}

func (o *Optimizer) accessCand(qt *Quantifier, path accessPath) *planCand {
	node := &qgm.Node{
		Op:             path.op,
		Table:          strings.ToUpper(qt.Ref.Table),
		TableInstance:  qt.Instance,
		Index:          path.indexName,
		EstCardinality: path.card,
		EstCost:        path.cost,
		RowSize:        qt.RowWidth,
		Pages:          qt.Pages,
		OrderedOn:      path.sortedOn,
	}
	for _, p := range qt.LocalPreds {
		node.Predicates = append(node.Predicates, p.String())
	}
	return &planCand{
		node:    node,
		cost:    path.cost,
		card:    path.card,
		rowSize: qt.RowWidth,
		set:     map[string]bool{qt.Instance: true},
	}
}

// accessCands returns the candidate access paths worth remembering for one
// quantifier: the overall cheapest, plus — per interesting order — the
// cheapest path producing that order. These are the System-R "interesting
// orders": a sorted access that loses on raw cost may still win globally by
// letting a merge join skip a sort.
func (o *Optimizer) accessCands(q *sqlparser.Query, qt *Quantifier, cons constraintSet, interesting map[string]bool) []*planCand {
	paths := o.accessPaths(q, qt, cons)
	best := paths[0]
	bestByOrder := map[string]accessPath{}
	for _, p := range paths {
		if p.cost < best.cost {
			best = p
		}
		if p.sortedOn != "" && interesting[strings.ToUpper(p.sortedOn)] {
			if prev, ok := bestByOrder[strings.ToUpper(p.sortedOn)]; !ok || p.cost < prev.cost {
				bestByOrder[strings.ToUpper(p.sortedOn)] = p
			}
		}
	}
	out := []*planCand{o.accessCand(qt, best)}
	orders := make([]string, 0, len(bestByOrder))
	for k := range bestByOrder {
		orders = append(orders, k)
	}
	sort.Strings(orders)
	for _, k := range orders {
		p := bestByOrder[k]
		if p == best {
			continue // the cheapest path already carries this order
		}
		out = append(out, o.accessCand(qt, p))
	}
	return out
}

// interestingOrders collects the instance-qualified columns an order property
// could pay for: equality join columns (merge joins) and ORDER BY columns
// (final sort elimination).
func interestingOrders(q *sqlparser.Query, byName map[string]*Quantifier) map[string]bool {
	out := map[string]bool{}
	add := func(c sqlparser.ColumnRef) {
		if qt := byName[strings.ToUpper(c.Table)]; qt != nil {
			out[strings.ToUpper(qt.Instance+"."+c.Column)] = true
		}
	}
	for _, p := range q.JoinPredicates() {
		add(p.Left)
		add(p.Right)
	}
	for _, c := range q.OrderBy {
		add(c)
	}
	return out
}

// --- join construction -------------------------------------------------------

// joinPredsBetween returns the join predicates connecting the quantifier sets.
func joinPredsBetween(q *sqlparser.Query, byName map[string]*Quantifier, left, right map[string]bool) []sqlparser.Predicate {
	var out []sqlparser.Predicate
	for _, p := range q.JoinPredicates() {
		lq := byName[strings.ToUpper(p.Left.Table)]
		rq := byName[strings.ToUpper(p.Right.Table)]
		if lq == nil || rq == nil {
			continue
		}
		if (left[lq.Instance] && right[rq.Instance]) || (left[rq.Instance] && right[lq.Instance]) {
			out = append(out, p)
		}
	}
	return out
}

// joinSelAcross multiplies the per-predicate join selectivities between two
// sets.
func (o *Optimizer) joinSelAcross(q *sqlparser.Query, byName map[string]*Quantifier, preds []sqlparser.Predicate) float64 {
	sel := 1.0
	for _, p := range preds {
		lq := byName[strings.ToUpper(p.Left.Table)]
		rq := byName[strings.ToUpper(p.Right.Table)]
		if lq == nil || rq == nil {
			continue
		}
		ndvL := columnNDV(o.Cat, lq.Ref.Table, p.Left.Column)
		ndvR := columnNDV(o.Cat, rq.Ref.Table, p.Right.Column)
		maxNDV := ndvL
		if ndvR > maxNDV {
			maxNDV = ndvR
		}
		if maxNDV > 0 {
			sel *= 1.0 / float64(maxNDV)
		} else {
			sel *= defaultJoinSel
		}
	}
	return clampSel(sel)
}

// buildJoinCand constructs a join candidate from two inputs, returning nil
// when the method is not applicable (NLJOIN over a multi-table inner).
func (o *Optimizer) buildJoinCand(method qgm.OpType, q *sqlparser.Query, byName map[string]*Quantifier,
	left, right *planCand, quantsByInstance map[string]*Quantifier) *planCand {
	cfg := o.Cat.Config
	preds := joinPredsBetween(q, byName, left.set, right.set)
	sel := 1.0
	if len(preds) > 0 {
		sel = o.joinSelAcross(q, byName, preds)
	}
	outCard := clampCard(left.card * right.card * sel)
	joinCols := make([]string, 0, len(preds))
	for _, p := range preds {
		joinCols = append(joinCols, p.String())
	}
	node := &qgm.Node{
		Op:             method,
		EstCardinality: outCard,
		RowSize:        left.rowSize + right.rowSize,
		JoinCols:       joinCols,
	}
	cand := &planCand{
		node:    node,
		card:    outCard,
		rowSize: left.rowSize + right.rowSize,
		set:     unionSets(left.set, right.set),
	}

	switch method {
	case qgm.OpHSJOIN:
		bloom := o.Opts.EnableBloomFilters && right.card <= left.card
		node.BloomFilter = bloom
		inc := hsjoinCost(cfg, left.card, right.card, outCard, left.rowSize, right.rowSize, bloom)
		cand.cost = left.cost + right.cost + inc
		node.Outer, node.Inner = left.node, right.node
		node.OrderedOn = left.orderedOn() // probe order is preserved
	case qgm.OpNLJOIN:
		// Nested loops only when the inner is a single base-table access.
		if len(right.set) != 1 || !right.node.Op.IsScan() {
			return nil
		}
		var innerQ *Quantifier
		for inst := range right.set {
			innerQ = quantsByInstance[inst]
		}
		if innerQ == nil {
			return nil
		}
		matchPerProbe := right.card * sel
		ap := accessPath{op: right.node.Op, indexName: right.node.Index, indexCluster: 0.5}
		if right.node.Index != "" && innerQ.Table != nil {
			if idx := innerQ.Table.IndexByName(right.node.Index); idx != nil {
				ap.indexCluster = idx.ClusterRatio
			}
		}
		probe := nljoinProbeCost(cfg, ap, innerQ, matchPerProbe)
		inc := left.card*probe + outCard*cfg.CPUSpeed
		cand.cost = left.cost + inc
		// The inner's own scan cost is not paid up-front; probes pay it.
		node.Outer, node.Inner = left.node, right.node
		node.OrderedOn = left.orderedOn() // outer order is preserved
	case qgm.OpMSJOIN:
		if len(preds) == 0 {
			return nil // merge join needs an equality join predicate
		}
		// Determine the sort columns required on each side. An input whose
		// order property already matches claims sort-avoidance; the others get
		// an explicit SORT whose order property records the merge column.
		lCol, rCol := o.mergeColumns(preds[0], byName, left.set)
		leftNode, leftCost := left.node, left.cost
		if !strings.EqualFold(left.orderedOn(), lCol) {
			leftCost += sortCost(cfg, left.card, left.rowSize)
			leftNode = &qgm.Node{Op: qgm.OpSORT, Outer: leftNode, EstCardinality: left.card, EstCost: leftCost, RowSize: left.rowSize, OrderedOn: lCol}
		}
		rightNode, rightCost := right.node, right.cost
		if !strings.EqualFold(right.orderedOn(), rCol) {
			rightCost += sortCost(cfg, right.card, right.rowSize)
			rightNode = &qgm.Node{Op: qgm.OpSORT, Outer: rightNode, EstCardinality: right.card, EstCost: rightCost, RowSize: right.rowSize, OrderedOn: rCol}
		}
		inc := msjoinCost(cfg, left.card, right.card, outCard)
		cand.cost = leftCost + rightCost + inc
		node.Outer, node.Inner = leftNode, rightNode
		node.EarlyOut = true
		node.OrderedOn = lCol
	default:
		return nil
	}
	node.EstCost = cand.cost
	return cand
}

// mergeColumns returns the instance-qualified sort columns required by a
// merge join for the left and right inputs.
func (o *Optimizer) mergeColumns(p sqlparser.Predicate, byName map[string]*Quantifier, leftSet map[string]bool) (string, string) {
	lq := byName[strings.ToUpper(p.Left.Table)]
	rq := byName[strings.ToUpper(p.Right.Table)]
	if lq == nil || rq == nil {
		return "", ""
	}
	if leftSet[lq.Instance] {
		return lq.Instance + "." + p.Left.Column, rq.Instance + "." + p.Right.Column
	}
	return rq.Instance + "." + p.Right.Column, lq.Instance + "." + p.Left.Column
}

// --- dynamic programming -----------------------------------------------------

// candSet is the dynamic-programming table entry for one quantifier subset:
// the overall-cheapest candidate plus, per interesting order, the cheapest
// candidate whose output carries that order. Keeping the ordered runners-up
// is what lets a merge join higher in the tree claim sort-avoidance from a
// plan that was not locally cheapest.
type candSet struct {
	best    *planCand
	byOrder map[string]*planCand
}

// add folds a candidate into the set, keeping per-order winners.
func (cs *candSet) add(cand *planCand, interesting map[string]bool) {
	if cand == nil {
		return
	}
	if cs.best == nil || cand.cost < cs.best.cost {
		cs.best = cand
	}
	ord := strings.ToUpper(cand.orderedOn())
	if ord == "" || !interesting[ord] {
		return
	}
	if cs.byOrder == nil {
		cs.byOrder = map[string]*planCand{}
	}
	if prev, ok := cs.byOrder[ord]; !ok || cand.cost < prev.cost {
		cs.byOrder[ord] = cand
	}
}

// cands lists the retained candidates: the cheapest first, then the ordered
// alternatives (in sorted order for determinism), skipping ones that carry no
// information beyond the cheapest.
func (cs *candSet) cands() []*planCand {
	if cs == nil || cs.best == nil {
		return nil
	}
	out := []*planCand{cs.best}
	if len(cs.byOrder) == 0 {
		return out
	}
	orders := make([]string, 0, len(cs.byOrder))
	for k := range cs.byOrder {
		orders = append(orders, k)
	}
	sort.Strings(orders)
	bestOrd := strings.ToUpper(cs.best.orderedOn())
	for _, k := range orders {
		if k == bestOrd {
			continue
		}
		out = append(out, cs.byOrder[k])
	}
	return out
}

func (o *Optimizer) dpEnumerate(q *sqlparser.Query, quants []*Quantifier, byName map[string]*Quantifier, cons constraintSet) (*qgm.Node, int, error) {
	n := len(quants)
	considered := 0
	quantsByInstance := map[string]*Quantifier{}
	for _, qt := range quants {
		quantsByInstance[qt.Instance] = qt
	}
	interesting := interestingOrders(q, byName)
	table := make(map[uint64]*candSet)
	for i, qt := range quants {
		set := &candSet{}
		for _, cand := range o.accessCands(q, qt, cons, interesting) {
			set.add(cand, interesting)
		}
		if set.best == nil {
			return nil, considered, fmt.Errorf("optimizer: no access path for %s", qt.Ref.Name())
		}
		table[1<<uint(i)] = set
	}
	maskSet := func(mask uint64) map[string]bool {
		set := map[string]bool{}
		for i, qt := range quants {
			if mask&(1<<uint(i)) != 0 {
				set[qt.Instance] = true
			}
		}
		return set
	}

	full := uint64(1)<<uint(n) - 1
	for size := 2; size <= n; size++ {
		for mask := uint64(1); mask <= full; mask++ {
			if popcount(mask) != size {
				continue
			}
			set := maskSet(mask)
			acc := &candSet{}
			// Enumerate proper splits; (sub, rest) visits both orders.
			for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
				rest := mask ^ sub
				ls, rs := table[sub], table[rest]
				if ls == nil || rs == nil || ls.best == nil || rs.best == nil {
					continue
				}
				if len(joinPredsBetween(q, byName, ls.best.set, rs.best.set)) == 0 && hasConnectedSplit(q, byName, mask, table, maskSet) {
					continue // avoid cartesian products when a connected split exists
				}
				if !cons.allowsPartition(set, ls.best.set, rs.best.set) {
					continue
				}
				for _, left := range ls.cands() {
					for _, right := range rs.cands() {
						for _, method := range qgm.JoinMethods() {
							if !cons.allowsJoin(set, left.set, right.set, method) {
								continue
							}
							cand := o.buildJoinCand(method, q, byName, left, right, quantsByInstance)
							considered++
							if cand == nil {
								continue
							}
							acc.add(cand, interesting)
						}
					}
				}
			}
			if acc.best != nil {
				table[mask] = acc
			}
		}
	}
	if table[full] == nil || table[full].best == nil {
		return nil, considered, fmt.Errorf("optimizer: no plan satisfies the active guideline constraints")
	}
	return table[full].best.node, considered, nil
}

func hasConnectedSplit(q *sqlparser.Query, byName map[string]*Quantifier, mask uint64, table map[uint64]*candSet, maskSet func(uint64) map[string]bool) bool {
	for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
		rest := mask ^ sub
		if table[sub] == nil || table[rest] == nil {
			continue
		}
		if len(joinPredsBetween(q, byName, maskSet(sub), maskSet(rest))) > 0 {
			return true
		}
	}
	return false
}

func popcount(x uint64) int {
	count := 0
	for x != 0 {
		x &= x - 1
		count++
	}
	return count
}

// --- greedy enumeration ------------------------------------------------------

// greedyEnumerate plans very large queries by repeatedly merging the pair of
// components with the cheapest join, honouring guideline constraints first.
func (o *Optimizer) greedyEnumerate(q *sqlparser.Query, quants []*Quantifier, byName map[string]*Quantifier, cons constraintSet) (*qgm.Node, int, error) {
	considered := 0
	quantsByInstance := map[string]*Quantifier{}
	for _, qt := range quants {
		quantsByInstance[qt.Instance] = qt
	}
	var comps []*planCand
	for _, qt := range quants {
		cand, err := o.bestAccess(q, qt, cons)
		if err != nil {
			return nil, considered, err
		}
		comps = append(comps, cand)
	}
	for len(comps) > 1 {
		type merge struct {
			i, j int
			cand *planCand
		}
		var best *merge
		// Honour guideline join constraints first: when two components match a
		// constrained join's outer and inner sets exactly, perform that merge
		// now so the constrained subtree exists in the final plan (DP gets
		// this for free; greedy must construct it eagerly).
		constrained := false
		for _, jc := range cons.joins {
			oi, ii := -1, -1
			for k, c := range comps {
				if sameSet(c.set, jc.outer) {
					oi = k
				}
				if sameSet(c.set, jc.inner) {
					ii = k
				}
			}
			if oi < 0 || ii < 0 || oi == ii {
				continue
			}
			cand := o.buildJoinCand(jc.method, q, byName, comps[oi], comps[ii], quantsByInstance)
			considered++
			if cand == nil {
				continue
			}
			var next []*planCand
			for k, c := range comps {
				if k != oi && k != ii {
					next = append(next, c)
				}
			}
			comps = append(next, cand)
			constrained = true
			break
		}
		if constrained {
			continue
		}
		tryPair := func(i, j int, requireConn bool) {
			left, right := comps[i], comps[j]
			connected := len(joinPredsBetween(q, byName, left.set, right.set)) > 0
			if requireConn && !connected {
				return
			}
			set := unionSets(left.set, right.set)
			if !cons.allowsPartition(set, left.set, right.set) {
				return
			}
			for _, method := range qgm.JoinMethods() {
				if !cons.allowsJoin(set, left.set, right.set, method) {
					continue
				}
				cand := o.buildJoinCand(method, q, byName, left, right, quantsByInstance)
				considered++
				if cand == nil {
					continue
				}
				if best == nil || cand.cost < best.cand.cost {
					best = &merge{i: i, j: j, cand: cand}
				}
			}
		}
		for i := 0; i < len(comps); i++ {
			for j := 0; j < len(comps); j++ {
				if i == j {
					continue
				}
				tryPair(i, j, true)
			}
		}
		if best == nil {
			// No connected pair: allow a cartesian product.
			for i := 0; i < len(comps); i++ {
				for j := 0; j < len(comps); j++ {
					if i != j {
						tryPair(i, j, false)
					}
				}
			}
		}
		if best == nil {
			return nil, considered, fmt.Errorf("optimizer: greedy enumeration found no joinable pair under the active constraints")
		}
		var next []*planCand
		for k, c := range comps {
			if k != best.i && k != best.j {
				next = append(next, c)
			}
		}
		next = append(next, best.cand)
		comps = next
	}
	return comps[0].node, considered, nil
}
