package optimizer

import (
	"fmt"
	"testing"

	"galo/internal/catalog"
	"galo/internal/executor"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
	"galo/internal/storage"
	"galo/internal/workload/tpcds"
)

// freshDB is a hazard-free database: statistics and histograms describe the
// data truthfully, so estimates should track actuals.
var freshTestDB *storage.Database

func freshDB(t *testing.T) *storage.Database {
	t.Helper()
	if freshTestDB == nil {
		var err error
		freshTestDB, err = tpcds.Generate(tpcds.GenOptions{Seed: 5, Scale: 0.1, Hazards: false})
		if err != nil {
			t.Fatal(err)
		}
	}
	return freshTestDB
}

// TestHistogramEstimatesTrackGroundTruth checks the stats layer end to end:
// with fresh histograms, range and equality estimates land within a small
// factor of the true counts — including on the skewed fact date key where
// min/max interpolation is off by an order of magnitude.
func TestHistogramEstimatesTrackGroundTruth(t *testing.T) {
	db := freshDB(t)
	o := New(db.Catalog, DefaultOptions())
	lo, hi, _ := tpcds.SaleDateRange(db)
	total := float64(db.RowCount(tpcds.StoreSales))

	countBetween := func(loV, hiV int64) float64 {
		tbl := db.Table(tpcds.StoreSales)
		ci := tbl.Def.ColumnIndex("SS_SOLD_DATE_SK")
		n := 0
		for _, row := range tbl.Rows {
			if d := row[ci].AsInt(); d >= loV && d <= hiV {
				n++
			}
		}
		return float64(n)
	}

	ts := o.Cat.Stats(tpcds.StoreSales)
	cases := []struct{ lo, hi int64 }{
		{lo, hi},      // the dense sale window
		{1, lo - 1},   // the sparse historical span
		{lo - 50, hi}, // straddling both
	}
	for _, c := range cases {
		truth := countBetween(c.lo, c.hi) / total
		est := o.predicateSelectivity(ts, sqlparser.Predicate{
			Kind: sqlparser.PredBetween,
			Left: sqlparser.ColumnRef{Table: "STORE_SALES", Column: "SS_SOLD_DATE_SK"},
			Lo:   catalog.Int(c.lo), Hi: catalog.Int(c.hi),
		})
		if truth == 0 {
			continue
		}
		if est < truth/2 || est > truth*2 {
			t.Errorf("range [%d,%d]: est %.4f vs truth %.4f (off by >2x)", c.lo, c.hi, est, truth)
		}
		// The pre-histogram interpolation over [min,max] assumes uniformity;
		// for the dense window it underestimates badly. Prove the histogram
		// is doing the work by comparing against the uniform assumption.
		if c.lo == lo && c.hi == hi {
			uniform := float64(hi-lo+1) / float64(hi)
			if est < uniform*2 {
				t.Errorf("window estimate %.4f does not beat the uniform assumption %.4f", est, uniform)
			}
		}
	}

	// Equality on the Zipf-skewed item key: the top item is far above 1/NDV.
	itemTS := o.Cat.Stats(tpcds.StoreSales)
	topCount := db.CountWhereEqual(tpcds.StoreSales, "SS_ITEM_SK", catalog.Int(1))
	truth := float64(topCount) / total
	est := o.predicateSelectivity(itemTS, sqlparser.Predicate{
		Kind: sqlparser.PredCompare, Op: "=",
		Left:  sqlparser.ColumnRef{Table: "STORE_SALES", Column: "SS_ITEM_SK"},
		Value: catalog.Int(1),
	})
	if est < truth/3 || est > truth*3 {
		t.Errorf("skewed equality: est %.5f vs truth %.5f", est, truth)
	}
}

// TestOrderPropertyEliminatesFinalSort is the IXSCAN -> SORT-elimination
// slice: an ORDER BY on an index-provided order needs no SORT operator, and
// the executed rows still come out sorted.
func TestOrderPropertyEliminatesFinalSort(t *testing.T) {
	db := freshDB(t)
	o := New(db.Catalog, DefaultOptions())
	plan := o.MustOptimize(sqlparser.MustParse(`SELECT i_item_sk FROM item ORDER BY i_item_sk`))
	var sorts, ixscans int
	plan.Root.Walk(func(n *qgm.Node) {
		if n.Op == qgm.OpSORT {
			sorts++
		}
		if n.Op == qgm.OpIXSCAN {
			ixscans++
			if n.OrderedOn == "" {
				t.Errorf("index scan carries no order property")
			}
		}
	})
	if ixscans != 1 || sorts != 0 {
		t.Fatalf("expected a sort-free index plan, got ixscans=%d sorts=%d:\n%s", ixscans, sorts, qgm.Format(plan))
	}
	// The plan without the SORT still delivers ordered rows.
	res, err := executor.New(db).Execute(plan, sqlparser.MustParse(`SELECT i_item_sk FROM item ORDER BY i_item_sk`))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rows); i++ {
		if catalog.Compare(res.Rows[i-1][0], res.Rows[i][0]) > 0 {
			t.Fatalf("row %d out of order: %v > %v", i, res.Rows[i-1][0], res.Rows[i][0])
		}
	}
	// A non-indexed order still gets its SORT.
	sorted := o.MustOptimize(sqlparser.MustParse(`SELECT i_item_desc FROM item ORDER BY i_item_desc`))
	if sorted.Root.Outer == nil || sorted.Root.Outer.Op != qgm.OpSORT {
		t.Errorf("ORDER BY without index order should keep the SORT:\n%s", qgm.Format(sorted))
	}
}

// TestMultiColumnOrderBySortsAllKeys guards the final SORT against the order
// property shortcut: a SORT whose property names the leading ORDER BY column
// must still sort by the full ORDER BY key list.
func TestMultiColumnOrderBySortsAllKeys(t *testing.T) {
	db := freshDB(t)
	o := New(db.Catalog, DefaultOptions())
	q := sqlparser.MustParse(`SELECT i_category, i_item_sk FROM item ORDER BY i_category, i_item_sk`)
	plan := o.MustOptimize(q)
	res, err := executor.New(db).Execute(plan, q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rows); i++ {
		prev, cur := res.Rows[i-1], res.Rows[i]
		c := catalog.Compare(prev[0], cur[0])
		if c > 0 || (c == 0 && catalog.Compare(prev[1], cur[1]) > 0) {
			t.Fatalf("row %d violates ORDER BY i_category, i_item_sk: %v > %v", i, prev, cur)
		}
	}
}

// TestOrderPropertyPropagatesThroughMSJOIN pins the full propagation chain:
// sorted index accesses feed a merge join that claims the order, no SORT
// operator appears, and the order property survives on the join output.
func TestOrderPropertyPropagatesThroughMSJOIN(t *testing.T) {
	hazardDB, err := tpcds.Generate(tpcds.GenOptions{Seed: 5, Scale: 0.1, Hazards: true})
	if err != nil {
		t.Fatal(err)
	}
	o := New(hazardDB.Catalog, DefaultOptions())
	lo, hi := tpcds.WideDateRange(hazardDB)
	q := sqlparser.MustParse(fmt.Sprintf(`SELECT ss_quantity FROM store_sales, date_dim
		WHERE ss_sold_date_sk = d_date_sk AND d_date_sk BETWEEN %d AND %d`, lo, hi))
	plan := o.MustOptimize(q)
	join := plan.Root.Outer
	for join != nil && !join.Op.IsJoin() {
		join = join.Outer
	}
	if join == nil || join.Op != qgm.OpMSJOIN {
		t.Fatalf("wide-range fact/dimension join should pick MSJOIN:\n%s", qgm.Format(plan))
	}
	if join.OrderedOn == "" {
		t.Errorf("merge join output carries no order property")
	}
	for _, input := range []*qgm.Node{join.Outer, join.Inner} {
		if input.Op == qgm.OpSORT {
			t.Errorf("merge input uses a SORT instead of claiming index order:\n%s", qgm.Format(plan))
		} else if !input.Op.IsScan() || input.Index == "" {
			t.Errorf("merge input should be a sorted index access, got %s", input)
		}
	}
}
