package optimizer

import (
	"strings"

	"galo/internal/catalog"
	"galo/internal/sqlparser"
)

// Selectivity defaults used when statistics are missing, mirroring the
// classic System-R reduction factors. They are the fallback of last resort:
// when a column carries an equi-depth histogram (storage.Analyze), range,
// BETWEEN and equality predicates are estimated from it instead.
const (
	defaultEqSel      = 0.01
	defaultRangeSel   = 1.0 / 3.0
	defaultBetweenSel = 0.25
	defaultLikeSel    = 0.10
	defaultJoinSel    = 0.01
)

// localSelectivity estimates the combined selectivity of local predicates on
// one table. Under the default configuration predicates are assumed
// independent (their selectivities multiply); with UseColumnGroups the
// estimator consults column-group statistics to correct for correlation.
func (o *Optimizer) localSelectivity(table string, preds []sqlparser.Predicate) float64 {
	if len(preds) == 0 {
		return 1.0
	}
	ts := o.Cat.Stats(table)
	sel := 1.0
	for _, p := range preds {
		sel *= o.predicateSelectivity(ts, p)
	}
	if o.Opts.UseColumnGroups && ts != nil && len(preds) >= 2 {
		sel = o.applyGroupStats(ts, preds, sel)
	}
	if sel < 1e-9 {
		sel = 1e-9
	}
	if sel > 1 {
		sel = 1
	}
	return sel
}

// applyGroupStats corrects the independence-assumption product `sel` using
// column-group (correlation) statistics. For every recorded group whose
// columns are all constrained by equality predicates, the product of the
// member columns' individual selectivities is replaced by the group's
// combined selectivity: the exact frequency of the value combination when it
// appears in the group's frequent-combination list, otherwise 1/groupNDV
// (guarded against being smaller than the independence product, since an
// NDV-only group cannot see skew across combinations). Predicates not
// covered by any group keep their independent estimates.
func (o *Optimizer) applyGroupStats(ts *catalog.TableStats, preds []sqlparser.Predicate, sel float64) float64 {
	type eqPred struct {
		val catalog.Value
		sel float64
	}
	eq := make(map[string]eqPred, len(preds))
	for _, p := range preds {
		if p.Kind == sqlparser.PredCompare && p.Op == "=" {
			eq[strings.ToUpper(p.Left.Column)] = eqPred{p.Value, o.predicateSelectivity(ts, p)}
		}
	}
	if len(eq) < 2 {
		return sel
	}
	used := make(map[string]bool, len(eq))
	for gi := range ts.Groups {
		g := &ts.Groups[gi]
		if len(g.Columns) < 2 {
			continue
		}
		covered := true
		for _, c := range g.Columns {
			cu := strings.ToUpper(c)
			if _, ok := eq[cu]; !ok || used[cu] {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		product := 1.0
		vals := make([]catalog.Value, len(g.Columns))
		for i, c := range g.Columns {
			e := eq[strings.ToUpper(c)]
			product *= e.sel
			vals[i] = e.val
		}
		groupSel := product
		if cnt, ok := g.FrequencyOf(vals); ok && ts.Cardinality > 0 {
			groupSel = float64(cnt) / float64(ts.Cardinality)
		} else if g.NDV > 0 {
			if gs := 1.0 / float64(g.NDV); gs > groupSel {
				groupSel = gs
			}
		}
		if product > 0 {
			sel = sel / product * groupSel
		}
		for _, c := range g.Columns {
			used[strings.ToUpper(c)] = true
		}
	}
	return sel
}

// predicateSelectivity estimates one predicate's reduction factor.
func (o *Optimizer) predicateSelectivity(ts *catalog.TableStats, p sqlparser.Predicate) float64 {
	var cs *catalog.ColumnStats
	if ts != nil {
		cs = ts.ColumnStats(p.Left.Column)
	}
	switch p.Kind {
	case sqlparser.PredCompare:
		return compareSelectivity(cs, p)
	case sqlparser.PredBetween:
		s := rangeFraction(cs, &p.Lo, &p.Hi)
		if s < 0 {
			s = defaultBetweenSel
		}
		if p.Not {
			s = 1 - s
		}
		return clampSel(s)
	case sqlparser.PredIn:
		s := 0.0
		for _, v := range p.Values {
			if cs != nil {
				if e := cs.Histogram.EqFraction(v); e >= 0 {
					s += e
					continue
				}
				if cs.NDV > 0 {
					s += 1.0 / float64(cs.NDV)
					continue
				}
			}
			s += defaultEqSel
		}
		if p.Not {
			s = 1 - s
		}
		return clampSel(s)
	case sqlparser.PredLike:
		s := defaultLikeSel
		if p.Not {
			s = 1 - s
		}
		return clampSel(s)
	case sqlparser.PredIsNull:
		s := 0.05
		if cs != nil && cs.RowCount > 0 {
			s = float64(cs.NullCount) / float64(cs.RowCount)
		}
		if p.Not {
			s = 1 - s
		}
		return clampSel(s)
	default:
		return defaultEqSel
	}
}

func compareSelectivity(cs *catalog.ColumnStats, p sqlparser.Predicate) float64 {
	switch p.Op {
	case "=":
		if cs != nil {
			if n, ok := cs.FrequencyOf(p.Value); ok && cs.RowCount > 0 {
				return clampSel(float64(n) / float64(cs.RowCount))
			}
			if s := cs.Histogram.EqFraction(p.Value); s >= 0 {
				return clampSel(s)
			}
			if cs.NDV > 0 {
				return clampSel(1.0 / float64(cs.NDV))
			}
		}
		return defaultEqSel
	case "<>":
		if cs != nil {
			if s := cs.Histogram.EqFraction(p.Value); s >= 0 {
				return clampSel(1 - s)
			}
			if cs.NDV > 0 {
				return clampSel(1 - 1.0/float64(cs.NDV))
			}
		}
		return clampSel(1 - defaultEqSel)
	case "<", "<=":
		s := rangeFraction(cs, nil, &p.Value)
		if s < 0 {
			return defaultRangeSel
		}
		return clampSel(s)
	case ">", ">=":
		s := rangeFraction(cs, &p.Value, nil)
		if s < 0 {
			return defaultRangeSel
		}
		return clampSel(s)
	default:
		return defaultRangeSel
	}
}

// rangeFraction estimates what fraction of the column's rows the range
// [lo, hi] covers. The equi-depth histogram answers first when one was
// collected; otherwise the estimate falls back to linear interpolation over
// the column's [min, max] domain (the pre-ANALYZE behaviour). It returns -1
// when neither is possible (missing stats or non-numeric domain).
func rangeFraction(cs *catalog.ColumnStats, lo, hi *catalog.Value) float64 {
	if cs == nil {
		return -1
	}
	if s := cs.Histogram.RangeFraction(lo, hi); s >= 0 {
		return s
	}
	if cs.Min.IsNull() || cs.Max.IsNull() {
		return -1
	}
	switch cs.Min.K {
	case catalog.KindInt, catalog.KindFloat, catalog.KindDate:
	default:
		return -1
	}
	minV, maxV := cs.Min.AsFloat(), cs.Max.AsFloat()
	if maxV <= minV {
		return -1
	}
	loV, hiV := minV, maxV
	if lo != nil && !lo.IsNull() {
		loV = lo.AsFloat()
	}
	if hi != nil && !hi.IsNull() {
		hiV = hi.AsFloat()
	}
	if hiV < loV {
		return 0
	}
	if loV < minV {
		loV = minV
	}
	if hiV > maxV {
		hiV = maxV
	}
	return (hiV - loV) / (maxV - minV)
}

// joinSelectivity estimates the selectivity of the equality join predicates
// between two quantifiers using 1/max(NDV_left, NDV_right) per predicate.
func (o *Optimizer) joinSelectivity(q *sqlparser.Query, left, right *Quantifier) float64 {
	preds := sqlparser.JoinsBetween(q, left.Ref.Name(), right.Ref.Name())
	if len(preds) == 0 {
		return 1.0 // cartesian product
	}
	sel := 1.0
	for _, p := range preds {
		lq, rq := left, right
		lcol, rcol := p.Left, p.Right
		if !strings.EqualFold(p.Left.Table, left.Ref.Name()) {
			lcol, rcol = p.Right, p.Left
		}
		ndvL := columnNDV(o.Cat, lq.Ref.Table, lcol.Column)
		ndvR := columnNDV(o.Cat, rq.Ref.Table, rcol.Column)
		maxNDV := ndvL
		if ndvR > maxNDV {
			maxNDV = ndvR
		}
		if maxNDV > 0 {
			sel *= 1.0 / float64(maxNDV)
		} else {
			sel *= defaultJoinSel
		}
	}
	return clampSel(sel)
}

func columnNDV(cat *catalog.Catalog, table, column string) int64 {
	ts := cat.Stats(table)
	if ts == nil {
		return 0
	}
	cs := ts.ColumnStats(column)
	if cs == nil {
		return 0
	}
	return cs.NDV
}

func clampSel(s float64) float64 {
	if s < 1e-9 {
		return 1e-9
	}
	if s > 1 {
		return 1
	}
	return s
}
