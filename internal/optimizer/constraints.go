package optimizer

import (
	"strings"

	"galo/internal/guideline"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
)

// accessConstraint forces the access method (and optionally the index) used
// for one table instance.
type accessConstraint struct {
	instance string
	method   qgm.OpType // OpTBSCAN, or OpIXSCAN meaning "index access"
	index    string
	gIndex   int
}

// joinConstraint forces one join: the instances of all must be joined with
// method, with outer as the first input and inner as the second.
type joinConstraint struct {
	method       qgm.OpType
	outer, inner map[string]bool
	all          map[string]bool
	gIndex       int
}

// constraintSet is the combination of constraints from the active guidelines.
type constraintSet struct {
	access map[string]accessConstraint
	joins  []joinConstraint
}

// allowsJoin reports whether joining left (outer) and right (inner) with the
// given method is compatible with the constraints for the combined set.
func (c constraintSet) allowsJoin(set, left, right map[string]bool, method qgm.OpType) bool {
	for _, jc := range c.joins {
		if !sameSet(jc.all, set) {
			continue
		}
		if jc.method != method || !sameSet(jc.outer, left) || !sameSet(jc.inner, right) {
			return false
		}
	}
	return true
}

// allowsPartition reports whether splitting set into (left, right) keeps every
// constrained sub-join intact: a guideline join over a subset of set must not
// be split across the two inputs, otherwise it could never be built.
func (c constraintSet) allowsPartition(set, left, right map[string]bool) bool {
	for _, jc := range c.joins {
		if !subsetOf(jc.all, set) || sameSet(jc.all, set) {
			continue
		}
		if !subsetOf(jc.all, left) && !subsetOf(jc.all, right) {
			return false
		}
	}
	return true
}

// guidelineConstraints is the decomposition of one top-level guideline.
type guidelineConstraints struct {
	access  []accessConstraint
	joins   []joinConstraint
	invalid bool // references instances or tables not present in the query
}

// satisfiedBy checks whether the final plan honours every constraint of the
// guideline.
func (g guidelineConstraints) satisfiedBy(root *qgm.Node) bool {
	if g.invalid || root == nil {
		return false
	}
	for _, ac := range g.access {
		if !accessSatisfied(root, ac) {
			return false
		}
	}
	for _, jc := range g.joins {
		if !joinSatisfied(root, jc) {
			return false
		}
	}
	return true
}

func accessSatisfied(root *qgm.Node, ac accessConstraint) bool {
	ok := false
	root.Walk(func(n *qgm.Node) {
		if ok || !n.Op.IsScan() || !strings.EqualFold(n.TableInstance, ac.instance) {
			return
		}
		switch ac.method {
		case qgm.OpTBSCAN:
			ok = n.Op == qgm.OpTBSCAN
		default: // index access
			if n.Op != qgm.OpIXSCAN && n.Op != qgm.OpFETCH {
				return
			}
			ok = ac.index == "" || strings.EqualFold(ac.index, n.Index)
		}
	})
	return ok
}

func nodeInstanceSet(n *qgm.Node) map[string]bool {
	set := map[string]bool{}
	n.Walk(func(x *qgm.Node) {
		if x.TableInstance != "" {
			set[x.TableInstance] = true
		}
	})
	return set
}

func joinSatisfied(root *qgm.Node, jc joinConstraint) bool {
	ok := false
	root.Walk(func(n *qgm.Node) {
		if ok || !n.Op.IsJoin() || n.Op != jc.method {
			return
		}
		if n.Outer == nil || n.Inner == nil {
			return
		}
		if sameSet(nodeInstanceSet(n), jc.all) &&
			sameSet(nodeInstanceSet(n.Outer), jc.outer) &&
			sameSet(nodeInstanceSet(n.Inner), jc.inner) {
			ok = true
		}
	})
	return ok
}

// buildConstraints decomposes the guideline document (if any) against the
// query's quantifiers. It returns the combined constraint set over all valid
// guidelines plus the per-guideline decomposition used for retry/reporting.
func (o *Optimizer) buildConstraints(q *sqlparser.Query, quants []*Quantifier, report *Report) (constraintSet, []guidelineConstraints) {
	doc := o.Opts.Guidelines
	if doc.Empty() {
		return constraintSet{access: map[string]accessConstraint{}}, nil
	}
	instanceExists := map[string]bool{}
	tableToInstances := map[string][]string{}
	for _, qt := range quants {
		instanceExists[qt.Instance] = true
		tbl := strings.ToUpper(qt.Ref.Table)
		tableToInstances[tbl] = append(tableToInstances[tbl], qt.Instance)
	}
	resolveInstance := func(e *guideline.Element) (string, bool) {
		if e.TabID != "" {
			id := strings.ToUpper(e.TabID)
			return id, instanceExists[id]
		}
		if e.Table != "" {
			insts := tableToInstances[strings.ToUpper(e.Table)]
			if len(insts) == 1 {
				return insts[0], true
			}
		}
		return "", false
	}

	perGuideline := make([]guidelineConstraints, len(doc.Guidelines))
	for gi, g := range doc.Guidelines {
		gc := &perGuideline[gi]
		var collect func(e *guideline.Element) map[string]bool
		collect = func(e *guideline.Element) map[string]bool {
			if gc.invalid || e == nil {
				return map[string]bool{}
			}
			if e.IsAccess() {
				inst, ok := resolveInstance(e)
				if !ok {
					gc.invalid = true
					return map[string]bool{}
				}
				method := qgm.OpTBSCAN
				if e.Op == guideline.ElemIXSCAN {
					method = qgm.OpIXSCAN
				}
				gc.access = append(gc.access, accessConstraint{instance: inst, method: method, index: e.Index, gIndex: gi})
				return map[string]bool{inst: true}
			}
			// Join element.
			if len(e.Children) != 2 {
				gc.invalid = true
				return map[string]bool{}
			}
			outer := collect(e.Children[0])
			inner := collect(e.Children[1])
			if gc.invalid {
				return map[string]bool{}
			}
			method := qgm.OpHSJOIN
			switch e.Op {
			case guideline.ElemNLJOIN:
				method = qgm.OpNLJOIN
			case guideline.ElemMSJOIN:
				method = qgm.OpMSJOIN
			}
			all := unionSets(outer, inner)
			gc.joins = append(gc.joins, joinConstraint{method: method, outer: outer, inner: inner, all: all, gIndex: gi})
			return all
		}
		collect(g)
		_ = report
	}
	active := make([]bool, len(perGuideline))
	for i := range active {
		active[i] = true
	}
	return filterConstraints(constraintSet{}, perGuideline, active), perGuideline
}

// filterConstraints combines the constraints of the guidelines that are still
// active and valid.
func filterConstraints(_ constraintSet, perGuideline []guidelineConstraints, active []bool) constraintSet {
	out := constraintSet{access: map[string]accessConstraint{}}
	for i, gc := range perGuideline {
		if gc.invalid || i >= len(active) || !active[i] {
			continue
		}
		for _, ac := range gc.access {
			out.access[ac.instance] = ac
		}
		out.joins = append(out.joins, gc.joins...)
	}
	return out
}
