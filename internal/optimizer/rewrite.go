package optimizer

import (
	"fmt"

	"galo/internal/catalog"
	"galo/internal/sqlparser"
)

// rewrite is the tier-1 query-rewrite engine: heuristic, semantics-preserving
// transformations applied before cost-based planning, as in DB2's query
// rewrite stage. Implemented rewrites:
//
//   - duplicate predicate elimination;
//   - predicate transitivity: a.x = b.y AND b.y = c  ==>  also a.x = c, which
//     gives the cost-based tier more local filtering opportunities;
//   - contradiction detection for BETWEEN with an empty range (noted, the
//     predicate is kept so the executor still returns zero rows).
func (o *Optimizer) rewrite(q *sqlparser.Query, report *Report) {
	// Duplicate elimination.
	seen := map[string]bool{}
	var dedup []sqlparser.Predicate
	for _, p := range q.Where {
		key := p.String()
		if seen[key] {
			report.RewriteNotes = append(report.RewriteNotes, fmt.Sprintf("removed duplicate predicate %s", key))
			continue
		}
		seen[key] = true
		dedup = append(dedup, p)
	}
	q.Where = dedup

	// Predicate transitivity across equality join predicates: equality,
	// range-comparison and BETWEEN predicates on one side of a.x = b.y hold
	// for the other side too. Range transitivity is what carries a dimension's
	// date-range restriction onto the fact table's join key, giving the
	// cost-based tier a sargable fact-side predicate (and, with stale fact
	// statistics, the Figure 8 misestimation surface).
	var inferred []sqlparser.Predicate
	for _, jp := range q.JoinPredicates() {
		for _, lp := range q.LocalPredicates() {
			transitive := false
			switch {
			case lp.Kind == sqlparser.PredCompare:
				switch lp.Op {
				case "=", "<", "<=", ">", ">=":
					transitive = true
				}
			case lp.Kind == sqlparser.PredBetween && !lp.Not:
				transitive = true
			}
			if !transitive {
				continue
			}
			var target sqlparser.ColumnRef
			if lp.Left == jp.Left {
				target = jp.Right
			} else if lp.Left == jp.Right {
				target = jp.Left
			} else {
				continue
			}
			cand := lp
			cand.Left = target
			if !seen[cand.String()] {
				seen[cand.String()] = true
				inferred = append(inferred, cand)
				report.RewriteNotes = append(report.RewriteNotes,
					fmt.Sprintf("inferred %s from %s and %s", cand.String(), jp.String(), lp.String()))
			}
		}
	}
	q.Where = append(q.Where, inferred...)

	// Contradiction detection.
	for _, p := range q.Where {
		if p.Kind == sqlparser.PredBetween && !p.Not && catalog.Compare(p.Lo, p.Hi) > 0 {
			report.RewriteNotes = append(report.RewriteNotes,
				fmt.Sprintf("predicate %s can never be satisfied", p.String()))
		}
	}
}
