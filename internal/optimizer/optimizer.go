// Package optimizer implements the minidb two-tier optimizer the paper's
// system sits on top of: a query-rewrite tier applying heuristic
// simplifications, and a cost-based tier performing System-R style dynamic
// programming join enumeration with access-path and join-method selection.
//
// The optimizer plans from catalog statistics (which may be stale, sampled or
// missing correlation information), so its estimates can diverge from the
// runtime truth — that divergence is what GALO's learning engine harvests.
// The optimizer also honours OPTGUIDELINES documents (internal/guideline),
// which is the mechanism GALO uses for re-optimization: guidelines constrain
// join methods, join order and access methods, and inapplicable guidelines
// are dropped, exactly as in the paper.
package optimizer

import (
	"fmt"
	"strings"

	"galo/internal/catalog"
	"galo/internal/guideline"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
)

// Options configures the optimizer.
type Options struct {
	// JoinEnumDPLimit is the maximum number of table references planned with
	// exhaustive dynamic programming; larger queries use a greedy heuristic,
	// mirroring how production optimizers cap enumeration.
	JoinEnumDPLimit int
	// UseColumnGroups makes the estimator consult column-group (correlation)
	// statistics when present. Off by default: the independence assumption is
	// one of the estimation errors the paper's problem patterns stem from.
	UseColumnGroups bool
	// EnableBloomFilters lets hash joins build a bloom filter on the inner
	// input (the fix of Figure 4).
	EnableBloomFilters bool
	// Guidelines optionally constrains planning (re-optimization).
	Guidelines *guideline.Document
}

// DefaultOptions returns the configuration used by the experiments.
func DefaultOptions() Options {
	return Options{JoinEnumDPLimit: 10, EnableBloomFilters: true}
}

// Report describes what the optimizer did with a query, including which
// guidelines were honoured (the matching engine surfaces this to the user).
type Report struct {
	// UsedDP is true when exhaustive enumeration was used.
	UsedDP bool
	// PlansConsidered counts join combinations examined.
	PlansConsidered int
	// GuidelinesApplied and GuidelinesIgnored index into the guideline
	// document passed in Options.
	GuidelinesApplied []int
	GuidelinesIgnored []int
	// RewriteNotes describes tier-1 rewrites that fired.
	RewriteNotes []string
}

// Optimizer plans SQL queries against a catalog.
type Optimizer struct {
	Cat  *catalog.Catalog
	Opts Options

	// lastUsedDP records whether the most recent enumeration was exhaustive;
	// it feeds the Report.
	lastUsedDP bool
}

// New returns an optimizer over the catalog with the given options.
func New(cat *catalog.Catalog, opts Options) *Optimizer {
	if opts.JoinEnumDPLimit <= 0 {
		opts.JoinEnumDPLimit = 10
	}
	return &Optimizer{Cat: cat, Opts: opts}
}

// Quantifier is one table reference of the query being planned, with the
// estimates the optimizer derived for it. Instances are named Q1..Qn in FROM
// order, matching the TABID references used by guidelines.
type Quantifier struct {
	Ref        sqlparser.TableRef
	Instance   string
	Table      *catalog.Table
	LocalPreds []sqlparser.Predicate
	// RawCard is the optimizer's belief of the table cardinality.
	RawCard float64
	// Card is the estimated cardinality after local predicates.
	Card     float64
	RowWidth int
	Pages    float64
}

// Optimize plans the query: it resolves column references, applies the
// query-rewrite tier, then runs cost-based enumeration. The returned plan has
// estimated cardinalities and costs on every operator.
func (o *Optimizer) Optimize(q *sqlparser.Query) (*qgm.Plan, *Report, error) {
	if q == nil {
		return nil, nil, fmt.Errorf("optimizer: nil query")
	}
	work := q.Clone()
	if err := sqlparser.Resolve(work, o.Cat.Schema); err != nil {
		return nil, nil, err
	}
	report := &Report{}
	o.rewrite(work, report)
	quants := o.Quantifiers(work)
	root, err := o.enumerate(work, quants, report)
	if err != nil {
		return nil, nil, err
	}
	report.UsedDP = o.lastUsedDP
	root = o.addFinalOperators(work, root)
	plan := qgm.NewPlan(root)
	plan.SQL = work.SQL()
	plan.QueryName = work.Name
	plan.TotalCost = root.EstCost
	plan.EstimatedMillis = root.EstCost
	return plan, report, nil
}

// MustOptimize is Optimize but panics on error; for tests and examples.
func (o *Optimizer) MustOptimize(q *sqlparser.Query) *qgm.Plan {
	p, _, err := o.Optimize(q)
	if err != nil {
		panic(err)
	}
	return p
}

// Quantifiers assigns table instances (Q1..Qn, in FROM order) and derives the
// per-reference estimates.
func (o *Optimizer) Quantifiers(q *sqlparser.Query) []*Quantifier {
	out := make([]*Quantifier, 0, len(q.From))
	for i, ref := range q.From {
		inst := fmt.Sprintf("Q%d", i+1)
		tbl := o.Cat.Table(ref.Table)
		quant := &Quantifier{
			Ref:      ref,
			Instance: inst,
			Table:    tbl,
			RawCard:  o.Cat.EstimatedCardinality(ref.Table),
			Pages:    o.Cat.EstimatedPages(ref.Table),
		}
		if ts := o.Cat.Stats(ref.Table); ts != nil && ts.RowWidth > 0 {
			quant.RowWidth = ts.RowWidth
		} else {
			quant.RowWidth = 64
		}
		quant.LocalPreds = sqlparser.PredicatesFor(q, ref.Name())
		sel := o.localSelectivity(ref.Table, quant.LocalPreds)
		quant.Card = clampCard(quant.RawCard * sel)
		out = append(out, quant)
	}
	return out
}

// addFinalOperators adds SORT (for ORDER BY) and GRPBY (for GROUP BY)
// operators on top of the join tree.
func (o *Optimizer) addFinalOperators(q *sqlparser.Query, root *qgm.Node) *qgm.Node {
	if len(q.GroupBy) > 0 {
		card := root.EstCardinality
		groups := card / 10
		if groups < 1 {
			groups = 1
		}
		root = &qgm.Node{
			Op:             qgm.OpGRPBY,
			Outer:          root,
			EstCardinality: groups,
			EstCost:        root.EstCost + card*o.Cat.Config.CPUSpeed,
			RowSize:        root.RowSize,
			OrderedOn:      root.OrderedOn, // dedup keeps encounter order
		}
	}
	if len(q.OrderBy) > 0 {
		// Order-property payoff: a single-column ORDER BY whose column the
		// plan already delivers sorted needs no final SORT.
		if len(q.OrderBy) == 1 && root.OrderedOn != "" {
			if inst := InstanceFor(q, q.OrderBy[0].Table); inst != "" &&
				strings.EqualFold(root.OrderedOn, inst+"."+q.OrderBy[0].Column) {
				return root
			}
		}
		card := root.EstCardinality
		root = &qgm.Node{
			Op:             qgm.OpSORT,
			Outer:          root,
			EstCardinality: card,
			EstCost:        root.EstCost + sortCost(o.Cat.Config, card, root.RowSize),
			RowSize:        root.RowSize,
			OrderedOn:      orderByProperty(q),
		}
	}
	return root
}

// orderByProperty returns the instance-qualified first ORDER BY column, the
// order property a final SORT establishes.
func orderByProperty(q *sqlparser.Query) string {
	if len(q.OrderBy) == 0 {
		return ""
	}
	inst := InstanceFor(q, q.OrderBy[0].Table)
	if inst == "" {
		return ""
	}
	return inst + "." + q.OrderBy[0].Column
}

// InstanceFor returns the instance name assigned to a FROM reference name.
func InstanceFor(q *sqlparser.Query, refName string) string {
	for i, ref := range q.From {
		if strings.EqualFold(ref.Name(), refName) {
			return fmt.Sprintf("Q%d", i+1)
		}
	}
	return ""
}

func clampCard(c float64) float64 {
	if c < 1 {
		return 1
	}
	return c
}
