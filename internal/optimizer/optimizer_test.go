package optimizer

import (
	"strings"
	"testing"

	"galo/internal/catalog"
	"galo/internal/guideline"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
	"galo/internal/storage"
	"galo/internal/workload/tpcds"
)

var testDB *storage.Database

func db(t *testing.T) *storage.Database {
	t.Helper()
	if testDB == nil {
		var err error
		testDB, err = tpcds.Generate(tpcds.GenOptions{Seed: 11, Scale: 0.15, Hazards: true})
		if err != nil {
			t.Fatalf("generate tpcds: %v", err)
		}
	}
	return testDB
}

func newOpt(t *testing.T) *Optimizer {
	return New(db(t).Catalog, DefaultOptions())
}

func TestOptimizeFigure3Query(t *testing.T) {
	o := newOpt(t)
	plan, report, err := o.Optimize(tpcds.Fig3Query())
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("plan invalid: %v\n%s", err, qgm.Format(plan))
	}
	if plan.NumJoins() != 2 {
		t.Errorf("NumJoins = %d, want 2", plan.NumJoins())
	}
	if plan.TotalCost <= 0 {
		t.Errorf("TotalCost = %v", plan.TotalCost)
	}
	inst := plan.TableInstances()
	if inst["Q1"] != "WEB_SALES" || inst["Q2"] != "ITEM" || inst["Q3"] != "DATE_DIM" {
		t.Errorf("instances = %v (should follow FROM order)", inst)
	}
	if !report.UsedDP && report.PlansConsidered == 0 {
		t.Errorf("report looks empty: %+v", report)
	}
	for _, op := range plan.Operators() {
		if op.EstCardinality < 1 {
			t.Errorf("operator %s has cardinality %v", op, op.EstCardinality)
		}
	}
}

func TestOptimizeEntireWorkload(t *testing.T) {
	o := newOpt(t)
	for _, q := range tpcds.Queries() {
		plan, _, err := o.Optimize(q)
		if err != nil {
			t.Fatalf("Optimize(%s): %v", q.Name, err)
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("plan for %s invalid: %v", q.Name, err)
		}
		if len(plan.TableInstances()) != len(q.From) {
			t.Errorf("%s: plan covers %d instances, query has %d references",
				q.Name, len(plan.TableInstances()), len(q.From))
		}
	}
}

func TestOptimizeSingleTable(t *testing.T) {
	o := newOpt(t)
	plan, _, err := o.Optimize(sqlparser.MustParse(`SELECT i_item_desc FROM item WHERE i_category = 'Music'`))
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if plan.NumJoins() != 0 {
		t.Errorf("single table plan has joins")
	}
	if len(plan.Root.Scans()) != 1 {
		t.Errorf("expected one scan")
	}
}

func TestOptimizeErrors(t *testing.T) {
	o := newOpt(t)
	if _, _, err := o.Optimize(nil); err == nil {
		t.Errorf("nil query should fail")
	}
	if _, _, err := o.Optimize(sqlparser.MustParse("SELECT x FROM nonexistent")); err == nil {
		t.Errorf("unknown table should fail")
	}
}

func TestStaleStatsDistortEstimates(t *testing.T) {
	o := newOpt(t)
	plan := o.MustOptimize(sqlparser.MustParse(`SELECT cs_quantity FROM catalog_sales WHERE cs_quantity > 0`))
	scan := plan.Root.Scans()[0]
	actualRows := float64(db(t).RowCount(tpcds.CatalogSales))
	if scan.EstCardinality > actualRows*0.5 {
		t.Errorf("stale stats should make the optimizer underestimate: est=%v actual=%v",
			scan.EstCardinality, actualRows)
	}
}

func TestGroupByOrderByOperators(t *testing.T) {
	o := newOpt(t)
	plan := o.MustOptimize(sqlparser.MustParse(
		`SELECT i_category, i_class FROM item WHERE i_current_price > 10 GROUP BY i_category, i_class ORDER BY i_category`))
	var sawGrpby, sawSort bool
	plan.Root.Walk(func(n *qgm.Node) {
		if n.Op == qgm.OpGRPBY {
			sawGrpby = true
		}
		if n.Op == qgm.OpSORT {
			sawSort = true
		}
	})
	if !sawGrpby || !sawSort {
		t.Errorf("GRPBY/SORT missing: grpby=%v sort=%v\n%s", sawGrpby, sawSort, qgm.Format(plan))
	}
}

func TestGuidelineForcesJoinMethodAndOrder(t *testing.T) {
	o := newOpt(t)
	q := sqlparser.MustParse(`SELECT i_item_desc FROM web_sales, item
		WHERE ws_item_sk = i_item_sk AND i_category = 'Jewelry'`)
	base := o.MustOptimize(q)

	// Force an HSJOIN with ITEM (Q2) as the outer and WEB_SALES (Q1) as the
	// inner, both via table scans.
	doc := &guideline.Document{Guidelines: []*guideline.Element{{
		Op: guideline.ElemHSJOIN,
		Children: []*guideline.Element{
			{Op: guideline.ElemTBSCAN, TabID: "Q2"},
			{Op: guideline.ElemTBSCAN, TabID: "Q1"},
		},
	}}}
	constrained := New(db(t).Catalog, Options{JoinEnumDPLimit: 10, EnableBloomFilters: true, Guidelines: doc})
	plan, report, err := constrained.Optimize(q)
	if err != nil {
		t.Fatalf("Optimize with guideline: %v", err)
	}
	if len(report.GuidelinesApplied) != 1 || len(report.GuidelinesIgnored) != 0 {
		t.Fatalf("guideline outcome = %+v", report)
	}
	join := plan.Root.Joins()[0]
	if join.Op != qgm.OpHSJOIN {
		t.Errorf("join method = %s, want HSJOIN", join.Op)
	}
	if join.Outer.TableInstance != "Q2" || join.Inner.TableInstance != "Q1" {
		t.Errorf("join order not honoured: outer=%s inner=%s", join.Outer.TableInstance, join.Inner.TableInstance)
	}
	for _, s := range plan.Root.Scans() {
		if s.Op != qgm.OpTBSCAN {
			t.Errorf("guideline access method not honoured for %s: %s", s.TableInstance, s.Op)
		}
	}
	_ = base
}

func TestGuidelineReferencingMissingInstanceIsIgnored(t *testing.T) {
	q := sqlparser.MustParse(`SELECT i_item_desc FROM web_sales, item WHERE ws_item_sk = i_item_sk`)
	doc := &guideline.Document{Guidelines: []*guideline.Element{{
		Op: guideline.ElemNLJOIN,
		Children: []*guideline.Element{
			{Op: guideline.ElemTBSCAN, TabID: "Q7"},
			{Op: guideline.ElemTBSCAN, TabID: "Q8"},
		},
	}}}
	o := New(db(t).Catalog, Options{JoinEnumDPLimit: 10, Guidelines: doc})
	plan, report, err := o.Optimize(q)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
	if len(report.GuidelinesIgnored) != 1 || len(report.GuidelinesApplied) != 0 {
		t.Errorf("guideline outcome = %+v, want ignored", report)
	}
}

func TestConflictingGuidelineIsDropped(t *testing.T) {
	// Two guidelines over the same pair with different methods: only one can
	// be honoured; planning must still succeed.
	q := sqlparser.MustParse(`SELECT i_item_desc FROM web_sales, item WHERE ws_item_sk = i_item_sk`)
	mk := func(op string, outerID, innerID string) *guideline.Element {
		return &guideline.Element{Op: op, Children: []*guideline.Element{
			{Op: guideline.ElemTBSCAN, TabID: outerID},
			{Op: guideline.ElemTBSCAN, TabID: innerID},
		}}
	}
	doc := &guideline.Document{Guidelines: []*guideline.Element{
		mk(guideline.ElemHSJOIN, "Q1", "Q2"),
		mk(guideline.ElemMSJOIN, "Q2", "Q1"),
	}}
	o := New(db(t).Catalog, Options{JoinEnumDPLimit: 10, Guidelines: doc})
	plan, report, err := o.Optimize(q)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
	if len(report.GuidelinesApplied) != 1 || len(report.GuidelinesIgnored) != 1 {
		t.Errorf("guideline outcome = %+v, want one applied and one dropped", report)
	}
}

func TestGuidelineOnLargeQueryUsesGreedyPath(t *testing.T) {
	// A wide query exceeds the DP limit; guidelines should still be honoured.
	q := tpcds.WideQuery(14)
	doc := &guideline.Document{Guidelines: []*guideline.Element{{
		Op: guideline.ElemHSJOIN,
		Children: []*guideline.Element{
			{Op: guideline.ElemTBSCAN, TabID: "Q2"}, // F1 fact table
			{Op: guideline.ElemTBSCAN, TabID: "Q1"}, // I0 item
		},
	}}}
	o := New(db(t).Catalog, Options{JoinEnumDPLimit: 8, EnableBloomFilters: true, Guidelines: doc})
	plan, report, err := o.Optimize(q)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
	if len(report.GuidelinesApplied) != 1 {
		t.Errorf("wide-query guideline not applied: %+v", report)
	}
}

func TestBuildPlanFromSpec(t *testing.T) {
	o := newOpt(t)
	q := sqlparser.MustParse(`SELECT i_item_desc FROM web_sales, item, date_dim
		WHERE ws_item_sk = i_item_sk AND ws_sold_date_sk = d_date_sk AND i_category = 'Books'`)
	spec := Join(qgm.OpHSJOIN,
		Join(qgm.OpHSJOIN, Leaf("WEB_SALES"), Leaf("ITEM")),
		LeafAccess("DATE_DIM", qgm.OpIXSCAN, "D_DATE_SK"))
	plan, err := o.BuildPlan(q, spec)
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
	if plan.NumJoins() != 2 {
		t.Errorf("NumJoins = %d", plan.NumJoins())
	}
	if !strings.Contains(plan.Signature(), "HSJOIN") {
		t.Errorf("signature = %s", plan.Signature())
	}
	var dateScan *qgm.Node
	plan.Root.Walk(func(n *qgm.Node) {
		if n.Table == "DATE_DIM" {
			dateScan = n
		}
	})
	if dateScan == nil || !dateScan.Op.IsScan() || dateScan.Index == "" {
		t.Errorf("date_dim access should use an index: %+v", dateScan)
	}
}

func TestBuildPlanSpecValidation(t *testing.T) {
	o := newOpt(t)
	q := sqlparser.MustParse(`SELECT i_item_desc FROM web_sales, item WHERE ws_item_sk = i_item_sk`)
	// Missing table.
	if _, err := o.BuildPlan(q, Leaf("WEB_SALES")); err == nil {
		t.Errorf("spec missing a reference should fail")
	}
	// Duplicate table.
	dup := Join(qgm.OpHSJOIN, Leaf("WEB_SALES"), Leaf("WEB_SALES"))
	if _, err := o.BuildPlan(q, dup); err == nil {
		t.Errorf("spec with duplicate reference should fail")
	}
	// NLJOIN with a join (multi-table) inner is invalid.
	q3 := sqlparser.MustParse(`SELECT i_item_desc FROM web_sales, item, date_dim
		WHERE ws_item_sk = i_item_sk AND ws_sold_date_sk = d_date_sk`)
	bad := Join(qgm.OpNLJOIN, Leaf("DATE_DIM"), Join(qgm.OpHSJOIN, Leaf("WEB_SALES"), Leaf("ITEM")))
	if _, err := o.BuildPlan(q3, bad); err == nil {
		t.Errorf("NLJOIN over a multi-table inner should be rejected")
	}
	if _, err := o.BuildPlan(q, nil); err == nil {
		t.Errorf("nil spec should fail")
	}
	// Unknown index in access spec.
	badIdx := Join(qgm.OpHSJOIN, Leaf("WEB_SALES"), LeafAccess("ITEM", qgm.OpIXSCAN, "NO_SUCH_IDX"))
	if _, err := o.BuildPlan(q, badIdx); err == nil {
		t.Errorf("unknown index should fail")
	}
}

func TestRewriteInfersTransitivePredicates(t *testing.T) {
	o := newOpt(t)
	q := sqlparser.MustParse(`SELECT d_year FROM store_sales, date_dim
		WHERE ss_sold_date_sk = d_date_sk AND d_date_sk = 100`)
	work := q.Clone()
	if err := sqlparser.Resolve(work, o.Cat.Schema); err != nil {
		t.Fatal(err)
	}
	report := &Report{}
	o.rewrite(work, report)
	found := false
	for _, p := range work.LocalPredicates() {
		if p.Left.Column == "SS_SOLD_DATE_SK" && p.Kind == sqlparser.PredCompare {
			found = true
		}
	}
	if !found {
		t.Errorf("transitive predicate not inferred; predicates = %v", work.Where)
	}
	if len(report.RewriteNotes) == 0 {
		t.Errorf("rewrite notes empty")
	}
	// Duplicate elimination.
	q2 := sqlparser.MustParse(`SELECT d_year FROM date_dim WHERE d_year > 1990 AND d_year > 1990`)
	work2 := q2.Clone()
	if err := sqlparser.Resolve(work2, o.Cat.Schema); err != nil {
		t.Fatal(err)
	}
	o.rewrite(work2, &Report{})
	if len(work2.Where) != 1 {
		t.Errorf("duplicate predicate not removed: %v", work2.Where)
	}
}

func TestSelectivityEstimates(t *testing.T) {
	o := newOpt(t)
	ts := o.Cat.Stats(tpcds.Item)
	eq := o.predicateSelectivity(ts, sqlparser.Predicate{
		Kind: sqlparser.PredCompare, Op: "=",
		Left:  sqlparser.ColumnRef{Table: "ITEM", Column: "I_CATEGORY"},
		Value: mustVal("Music"),
	})
	if eq <= 0 || eq > 0.5 {
		t.Errorf("equality selectivity = %v", eq)
	}
	rng := o.predicateSelectivity(ts, sqlparser.Predicate{
		Kind: sqlparser.PredCompare, Op: ">",
		Left:  sqlparser.ColumnRef{Table: "ITEM", Column: "I_CURRENT_PRICE"},
		Value: mustFloat(150),
	})
	if rng <= 0 || rng >= 1 {
		t.Errorf("range selectivity = %v", rng)
	}
	in := o.predicateSelectivity(ts, sqlparser.Predicate{
		Kind:   sqlparser.PredIn,
		Left:   sqlparser.ColumnRef{Table: "ITEM", Column: "I_CATEGORY"},
		Values: []catalog.Value{mustVal("Music"), mustVal("Books")},
	})
	if in <= eq || in > 1 {
		t.Errorf("IN selectivity = %v should exceed single equality %v", in, eq)
	}
	// Unknown stats fall back to defaults.
	def := o.predicateSelectivity(nil, sqlparser.Predicate{Kind: sqlparser.PredCompare, Op: "=",
		Left: sqlparser.ColumnRef{Column: "X"}, Value: mustVal("y")})
	if def != defaultEqSel {
		t.Errorf("default selectivity = %v", def)
	}
	// Combined local selectivity multiplies and clamps.
	sel := o.localSelectivity(tpcds.Item, []sqlparser.Predicate{
		{Kind: sqlparser.PredCompare, Op: "=", Left: sqlparser.ColumnRef{Table: "ITEM", Column: "I_CATEGORY"}, Value: mustVal("Music")},
		{Kind: sqlparser.PredCompare, Op: "=", Left: sqlparser.ColumnRef{Table: "ITEM", Column: "I_CLASS"}, Value: mustVal("Music-class-1")},
	})
	if sel <= 0 || sel > eq {
		t.Errorf("combined selectivity = %v (single = %v)", sel, eq)
	}
}

func mustVal(s string) catalog.Value  { return catalog.String(s) }
func mustFloat(f float64) catalog.Value { return catalog.Float(f) }
