package storage

import (
	"testing"

	"galo/internal/catalog"
)

func analyzeSchema() *catalog.Schema {
	s := catalog.NewSchema("T")
	tbl := catalog.NewTable("NUMS",
		catalog.Column{Name: "v", Type: catalog.KindInt},
		catalog.Column{Name: "label", Type: catalog.KindString},
	)
	s.AddTable(tbl)
	return s
}

func TestBuildEquiDepthHistogramUniform(t *testing.T) {
	var values []catalog.Value
	for i := 1; i <= 1000; i++ {
		values = append(values, catalog.Int(int64(i)))
	}
	h := BuildEquiDepthHistogram(values, 10)
	if h.NumBuckets() != 10 {
		t.Fatalf("buckets = %d, want 10", h.NumBuckets())
	}
	if h.Rows != 1000 || h.Min.AsInt() != 1 || h.Max().AsInt() != 1000 {
		t.Errorf("histogram bounds wrong: rows=%d min=%v max=%v", h.Rows, h.Min, h.Max())
	}
	for i, b := range h.Buckets {
		if b.Count != 100 || b.NDV != 100 {
			t.Errorf("bucket %d: count=%d ndv=%d, want 100/100", i, b.Count, b.NDV)
		}
	}
	// Estimated vs true fraction for a mid range.
	lo, hi := catalog.Int(251), catalog.Int(500)
	if f := h.RangeFraction(&lo, &hi); f < 0.22 || f > 0.28 {
		t.Errorf("range [251,500] fraction = %v, want ~0.25", f)
	}
}

func TestBuildEquiDepthHistogramSkewed(t *testing.T) {
	// Zipf-ish: value 1 appears 500 times, values 2..501 once each.
	var values []catalog.Value
	for i := 0; i < 500; i++ {
		values = append(values, catalog.Int(1))
	}
	for i := 2; i <= 501; i++ {
		values = append(values, catalog.Int(int64(i)))
	}
	h := BuildEquiDepthHistogram(values, 10)
	// Bucket boundaries never split the heavy hitter's run.
	first := h.Buckets[0]
	if first.Hi.AsInt() != 1 || first.Count != 500 || first.NDV != 1 {
		t.Fatalf("heavy hitter bucket = %+v", first)
	}
	if f := h.EqFraction(catalog.Int(1)); f < 0.45 || f > 0.55 {
		t.Errorf("heavy hitter equality fraction = %v, want 0.5", f)
	}
	// The tail estimate stays proportional despite the skew.
	lo, hi := catalog.Int(2), catalog.Int(501)
	if f := h.RangeFraction(&lo, &hi); f < 0.4 || f > 0.6 {
		t.Errorf("tail fraction = %v, want ~0.5", f)
	}
}

func TestBuildEquiDepthHistogramConstantAndEmpty(t *testing.T) {
	var values []catalog.Value
	for i := 0; i < 64; i++ {
		values = append(values, catalog.Int(7))
	}
	h := BuildEquiDepthHistogram(values, 8)
	if h.NumBuckets() != 1 {
		t.Fatalf("constant column should collapse to one bucket, got %d", h.NumBuckets())
	}
	if h.Buckets[0].NDV != 1 || h.Buckets[0].Count != 64 {
		t.Errorf("constant bucket = %+v", h.Buckets[0])
	}
	if f := h.EqFraction(catalog.Int(7)); f != 1 {
		t.Errorf("constant equality fraction = %v, want 1", f)
	}
	lo, hi := catalog.Int(7), catalog.Int(7)
	if f := h.RangeFraction(&lo, &hi); f != 1 {
		t.Errorf("constant point-range fraction = %v, want 1", f)
	}
	if BuildEquiDepthHistogram(nil, 8) != nil {
		t.Errorf("empty input should produce a nil histogram")
	}
}

func TestAnalyzeInstallsHistogramsAndNDV(t *testing.T) {
	cat := catalog.New(analyzeSchema())
	db := NewDatabase(cat)
	for i := 1; i <= 200; i++ {
		label := catalog.String("even")
		if i%2 == 1 {
			label = catalog.String("odd")
		}
		if err := db.Insert("NUMS", Row{catalog.Int(int64(i % 50)), label}); err != nil {
			t.Fatal(err)
		}
	}
	if err := Analyze(db, "NUMS", AnalyzeOptions{Buckets: 8}); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	ts := cat.Stats("NUMS")
	if ts == nil {
		t.Fatal("Analyze did not create table stats")
	}
	v := ts.ColumnStats("V")
	if v == nil || v.Histogram == nil {
		t.Fatal("no histogram on V")
	}
	if v.NDV != 50 {
		t.Errorf("NDV = %d, want 50", v.NDV)
	}
	if v.Min.AsInt() != 0 || v.Max.AsInt() != 49 {
		t.Errorf("min/max = %v/%v", v.Min, v.Max)
	}
	lbl := ts.ColumnStats("LABEL")
	if lbl == nil || lbl.Histogram == nil || lbl.NDV != 2 {
		t.Fatalf("label stats = %+v", lbl)
	}
	if f := lbl.Histogram.EqFraction(catalog.String("odd")); f < 0.4 || f > 0.6 {
		t.Errorf("odd fraction = %v, want 0.5", f)
	}
	// ANALYZE describes collection time: later inserts are invisible until
	// the next pass.
	for i := 0; i < 300; i++ {
		if err := db.Insert("NUMS", Row{catalog.Int(999), catalog.String("late")}); err != nil {
			t.Fatal(err)
		}
	}
	stale := cat.Stats("NUMS").ColumnStats("V")
	if f := stale.Histogram.EqFraction(catalog.Int(999)); f != 0 {
		t.Errorf("stale histogram sees the new load: %v", f)
	}
	if err := Analyze(db, "NUMS", AnalyzeOptions{}); err != nil {
		t.Fatal(err)
	}
	fresh := cat.Stats("NUMS").ColumnStats("V")
	if fresh.Max.AsInt() != 999 {
		t.Errorf("re-ANALYZE max = %v, want 999", fresh.Max)
	}
	if f := fresh.Histogram.EqFraction(catalog.Int(999)); f <= 0.1 {
		t.Errorf("re-ANALYZE should see the new load: %v", f)
	}
	if err := Analyze(db, "NO_SUCH", AnalyzeOptions{}); err == nil {
		t.Errorf("analyzing an unknown table should fail")
	}
}
