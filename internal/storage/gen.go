package storage

import (
	"math"
	"math/rand"

	"galo/internal/catalog"
)

// Generator produces deterministic synthetic data with controllable skew and
// correlation. It stands in for the TPC-DS dsdgen tool and for the IBM
// client's production data.
type Generator struct {
	rng *rand.Rand
}

// NewGenerator returns a generator seeded deterministically.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// UniformInt returns an integer uniformly distributed in [lo, hi].
func (g *Generator) UniformInt(lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	return lo + g.rng.Int63n(hi-lo+1)
}

// SkewedInt returns an integer in [1, n] drawn from a Zipf-like distribution
// with the given skew exponent (>0). Larger skew concentrates mass on small
// values; this is how fact-table foreign keys concentrate on a few dimension
// rows, which is what defeats the optimizer's uniformity assumption.
func (g *Generator) SkewedInt(n int64, skew float64) int64 {
	if n <= 1 {
		return 1
	}
	if skew <= 0 {
		return g.UniformInt(1, n)
	}
	// Inverse-CDF sampling of a truncated power law.
	u := g.rng.Float64()
	x := math.Pow(u, skew) // biases toward 0
	v := int64(x*float64(n)) + 1
	if v > n {
		v = n
	}
	return v
}

// Choice returns one of the options, uniformly.
func (g *Generator) Choice(options []string) string {
	if len(options) == 0 {
		return ""
	}
	return options[g.rng.Intn(len(options))]
}

// WeightedChoice returns options[i] with probability weights[i]/sum(weights).
func (g *Generator) WeightedChoice(options []string, weights []float64) string {
	if len(options) == 0 {
		return ""
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return g.Choice(options)
	}
	x := g.rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return options[i]
		}
	}
	return options[len(options)-1]
}

// Float returns a float uniformly in [lo, hi).
func (g *Generator) Float(lo, hi float64) float64 {
	return lo + g.rng.Float64()*(hi-lo)
}

// Bool returns true with probability p.
func (g *Generator) Bool(p float64) bool { return g.rng.Float64() < p }

// NullOr returns NULL with probability p, otherwise v.
func (g *Generator) NullOr(p float64, v catalog.Value) catalog.Value {
	if g.rng.Float64() < p {
		return catalog.Null()
	}
	return v
}

// Perm returns a random permutation of [0,n).
func (g *Generator) Perm(n int) []int { return g.rng.Perm(n) }

// Intn exposes the underlying uniform integer draw in [0,n).
func (g *Generator) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return g.rng.Intn(n)
}
