package storage

import (
	"testing"
	"testing/quick"

	"galo/internal/catalog"
)

func testDB(t *testing.T) *Database {
	t.Helper()
	s := catalog.NewSchema("T")
	item := catalog.NewTable("item",
		catalog.Column{Name: "i_item_sk", Type: catalog.KindInt},
		catalog.Column{Name: "i_category", Type: catalog.KindString},
	)
	if err := item.AddIndex(catalog.Index{Columns: []string{"i_item_sk"}, Unique: true, ClusterRatio: 0.9}); err != nil {
		t.Fatal(err)
	}
	s.AddTable(item)
	db := NewDatabase(catalog.New(s))
	cats := []string{"Music", "Jewelry", "Books", "Sports"}
	for i := int64(1); i <= 100; i++ {
		if err := db.Insert("item", Row{catalog.Int(i), catalog.String(cats[i%4])}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestInsertAndRowCount(t *testing.T) {
	db := testDB(t)
	if db.RowCount("item") != 100 {
		t.Errorf("RowCount = %d", db.RowCount("item"))
	}
	if db.RowCount("missing") != 0 {
		t.Errorf("missing table RowCount should be 0")
	}
	if err := db.Insert("missing", Row{catalog.Int(1)}); err == nil {
		t.Errorf("Insert into unknown table should fail")
	}
	if err := db.Insert("item", Row{catalog.Int(1)}); err == nil {
		t.Errorf("Insert with wrong arity should fail")
	}
	names := db.TableNames()
	if len(names) != 1 || names[0] != "ITEM" {
		t.Errorf("TableNames = %v", names)
	}
}

func TestIndexLookupEqual(t *testing.T) {
	db := testDB(t)
	idx := db.IndexOnColumn("item", "i_item_sk")
	if idx == nil {
		t.Fatal("IndexOnColumn returned nil")
	}
	if idx.Len() != 100 {
		t.Errorf("index Len = %d", idx.Len())
	}
	ids := idx.LookupEqual(catalog.Int(42))
	if len(ids) != 1 {
		t.Fatalf("LookupEqual(42) = %v", ids)
	}
	row := db.Table("item").Rows[ids[0]]
	if row[0].AsInt() != 42 {
		t.Errorf("looked up wrong row: %v", row)
	}
	if got := idx.LookupEqual(catalog.Int(9999)); len(got) != 0 {
		t.Errorf("LookupEqual(miss) = %v", got)
	}
}

func TestIndexLookupRange(t *testing.T) {
	db := testDB(t)
	idx := db.IndexOnColumn("item", "i_item_sk")
	lo, hi := catalog.Int(10), catalog.Int(20)
	ids := idx.LookupRange(&lo, &hi)
	if len(ids) != 11 {
		t.Errorf("LookupRange(10,20) returned %d ids", len(ids))
	}
	ids = idx.LookupRange(nil, &hi)
	if len(ids) != 20 {
		t.Errorf("LookupRange(nil,20) returned %d ids", len(ids))
	}
	ids = idx.LookupRange(&lo, nil)
	if len(ids) != 91 {
		t.Errorf("LookupRange(10,nil) returned %d ids", len(ids))
	}
}

func TestIndexPositions(t *testing.T) {
	db := testDB(t)
	idx := db.IndexOnColumn("item", "i_item_sk")

	// PositionsEqual covers exactly the entries LookupEqual returns, as a
	// contiguous range — the contract the streaming executor iterates on.
	start, end := idx.PositionsEqual(catalog.Int(42))
	if end-start != 1 || idx.Entries[start].Key[0].AsInt() != 42 {
		t.Errorf("PositionsEqual(42) = [%d,%d)", start, end)
	}
	if s, e := idx.PositionsEqual(catalog.Int(9999)); e != s {
		t.Errorf("PositionsEqual(miss) = [%d,%d)", s, e)
	}
	if s, e := idx.PositionsEqual(catalog.Null()); e != s {
		t.Errorf("PositionsEqual(null) = [%d,%d)", s, e)
	}

	lo, hi := catalog.Int(10), catalog.Int(20)
	for _, tc := range []struct {
		name   string
		lo, hi *catalog.Value
		want   int
	}{
		{"both", &lo, &hi, 11},
		{"hi-only", nil, &hi, 20},
		{"lo-only", &lo, nil, 91},
		{"unbounded", nil, nil, 100},
	} {
		s, e := idx.PositionsRange(tc.lo, tc.hi)
		if e-s != tc.want {
			t.Errorf("PositionsRange(%s) covers %d entries, want %d", tc.name, e-s, tc.want)
		}
		ids := idx.LookupRange(tc.lo, tc.hi)
		if len(ids) != e-s {
			t.Errorf("PositionsRange(%s) and LookupRange disagree: %d vs %d", tc.name, e-s, len(ids))
		}
		for i := s; i < e; i++ {
			if ids[i-s] != idx.Entries[i].RowID {
				t.Fatalf("PositionsRange(%s) entry %d: RowID %d, LookupRange has %d",
					tc.name, i, idx.Entries[i].RowID, ids[i-s])
			}
		}
	}

	// Inverted bounds yield an empty, non-negative range.
	if s, e := idx.PositionsRange(&hi, &lo); e != s {
		t.Errorf("PositionsRange(inverted) = [%d,%d)", s, e)
	}
}

func TestIndexRebuiltAfterInsert(t *testing.T) {
	db := testDB(t)
	idx := db.IndexOnColumn("item", "i_item_sk")
	if idx.Len() != 100 {
		t.Fatalf("initial index len = %d", idx.Len())
	}
	if err := db.Insert("item", Row{catalog.Int(101), catalog.String("Music")}); err != nil {
		t.Fatal(err)
	}
	idx = db.IndexOnColumn("item", "i_item_sk")
	if idx.Len() != 101 {
		t.Errorf("index not rebuilt after insert: len=%d", idx.Len())
	}
}

func TestPagesAndWidth(t *testing.T) {
	db := testDB(t)
	if db.Pages("item") < 1 {
		t.Errorf("Pages = %d", db.Pages("item"))
	}
	if db.Pages("missing") != 1 {
		t.Errorf("Pages of missing table should default to 1")
	}
	if db.RowsPerPage("item") < 1 {
		t.Errorf("RowsPerPage = %d", db.RowsPerPage("item"))
	}
	w := db.Table("item").RowWidth()
	if w <= 0 {
		t.Errorf("RowWidth = %d", w)
	}
}

func TestDistinctAndCountWhere(t *testing.T) {
	db := testDB(t)
	if got := db.DistinctCount("item", "i_category"); got != 4 {
		t.Errorf("DistinctCount = %d, want 4", got)
	}
	if got := db.CountWhereEqual("item", "i_category", catalog.String("Music")); got != 25 {
		t.Errorf("CountWhereEqual(Music) = %d, want 25", got)
	}
	if got := db.CountWhereEqual("item", "i_category", catalog.String("Nope")); got != 0 {
		t.Errorf("CountWhereEqual(miss) = %d", got)
	}
	if db.DistinctCount("missing", "x") != 0 || db.DistinctCount("item", "nope") != 0 {
		t.Errorf("DistinctCount on missing table/column should be 0")
	}
}

func TestValueHelper(t *testing.T) {
	db := testDB(t)
	def := db.Table("item").Def
	row := db.Table("item").Rows[0]
	if Value(def, row, "i_item_sk").AsInt() != 1 {
		t.Errorf("Value helper returned wrong value")
	}
	if !Value(def, row, "nope").IsNull() {
		t.Errorf("Value of unknown column should be NULL")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, b := NewGenerator(7), NewGenerator(7)
	for i := 0; i < 100; i++ {
		if a.UniformInt(0, 1000) != b.UniformInt(0, 1000) {
			t.Fatalf("generators with same seed diverged at %d", i)
		}
	}
}

func TestGeneratorRanges(t *testing.T) {
	g := NewGenerator(11)
	f := func(lo, span uint8) bool {
		l, h := int64(lo), int64(lo)+int64(span)
		v := g.UniformInt(l, h)
		return v >= l && v <= h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for i := 0; i < 1000; i++ {
		if v := g.SkewedInt(100, 2.0); v < 1 || v > 100 {
			t.Fatalf("SkewedInt out of range: %d", v)
		}
	}
	if v := g.SkewedInt(1, 2.0); v != 1 {
		t.Errorf("SkewedInt(1) = %d", v)
	}
	if g.Float(2, 3) < 2 || g.Float(2, 3) >= 3 {
		t.Errorf("Float out of range")
	}
}

func TestGeneratorSkewConcentratesMass(t *testing.T) {
	g := NewGenerator(3)
	low := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.SkewedInt(1000, 3.0) <= 100 {
			low++
		}
	}
	// With strong skew, far more than 10% of draws land in the first 10%.
	if float64(low)/n < 0.4 {
		t.Errorf("skewed draws in first decile = %.2f, want >= 0.4", float64(low)/n)
	}
}

func TestGeneratorChoices(t *testing.T) {
	g := NewGenerator(5)
	if g.Choice(nil) != "" {
		t.Errorf("Choice(nil) should be empty")
	}
	opts := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		seen[g.Choice(opts)] = true
	}
	if len(seen) != 3 {
		t.Errorf("Choice never produced all options: %v", seen)
	}
	counts := map[string]int{}
	for i := 0; i < 5000; i++ {
		counts[g.WeightedChoice(opts, []float64{0.9, 0.05, 0.05})]++
	}
	if counts["a"] < 3500 {
		t.Errorf("WeightedChoice ignored weights: %v", counts)
	}
	if g.WeightedChoice(opts, []float64{0, 0, 0}) == "" {
		t.Errorf("WeightedChoice with zero weights should fall back to uniform")
	}
	nulls := 0
	for i := 0; i < 1000; i++ {
		if g.NullOr(0.5, catalog.Int(1)).IsNull() {
			nulls++
		}
	}
	if nulls < 300 || nulls > 700 {
		t.Errorf("NullOr(0.5) produced %d nulls out of 1000", nulls)
	}
}
