// Package storage implements the in-memory row store the minidb substrate
// runs on: base tables, secondary indexes, and page-granular access
// accounting.
//
// It replaces the DB2 storage layer from the paper. The executor uses it to
// produce the runtime truth (actual cardinalities, page reads, spills) that
// GALO's learning engine compares against the optimizer's estimates.
package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"galo/internal/catalog"
)

// Row is one tuple, with values in the table's column order.
type Row []catalog.Value

// IndexEntry maps an index key to the position of its row in the table.
type IndexEntry struct {
	Key   []catalog.Value
	RowID int
}

// IndexData is a materialized secondary index: entries sorted by key.
type IndexData struct {
	Def     *catalog.Index
	Entries []IndexEntry
	colPos  []int
}

// Table is the stored data for one base table.
type Table struct {
	Def  *catalog.Table
	Rows []Row
	// idxMu guards the lazily built index cache: plans execute concurrently
	// (the learning engine's worker pool) and may build the same index at
	// the same time. Row data itself is only mutated at generation time,
	// before any concurrent execution starts.
	idxMu   sync.RWMutex
	indexes map[string]*IndexData
}

// Database holds all table data for one catalog.
type Database struct {
	Catalog *catalog.Catalog
	mu      sync.RWMutex
	tables  map[string]*Table
}

// NewDatabase creates an empty database over the catalog's schema.
func NewDatabase(cat *catalog.Catalog) *Database {
	return &Database{Catalog: cat, tables: make(map[string]*Table)}
}

// lookup returns the stored table without creating it.
func (db *Database) lookup(table string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[strings.ToUpper(table)]
}

// Table returns the stored table, creating an empty one if the schema defines
// it and no rows have been inserted yet. Returns nil for unknown tables.
func (db *Database) Table(name string) *Table {
	key := strings.ToUpper(name)
	db.mu.RLock()
	t, ok := db.tables[key]
	db.mu.RUnlock()
	if ok {
		return t
	}
	def := db.Catalog.Table(key)
	if def == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if t, ok := db.tables[key]; ok {
		return t
	}
	t = &Table{Def: def, indexes: make(map[string]*IndexData)}
	db.tables[key] = t
	return t
}

// TableNames returns the names of tables that hold data, sorted.
func (db *Database) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Insert appends rows to the named table. Rows must have exactly as many
// values as the table has columns.
func (db *Database) Insert(table string, rows ...Row) error {
	t := db.Table(table)
	if t == nil {
		return fmt.Errorf("storage: unknown table %s", table)
	}
	ncols := len(t.Def.Columns)
	for _, r := range rows {
		if len(r) != ncols {
			return fmt.Errorf("storage: table %s expects %d columns, row has %d", t.Def.Name, ncols, len(r))
		}
		t.Rows = append(t.Rows, r)
	}
	// Any existing indexes are now stale; rebuild lazily.
	t.idxMu.Lock()
	t.indexes = make(map[string]*IndexData)
	t.idxMu.Unlock()
	return nil
}

// RowCount returns the number of rows stored in the table (0 if absent).
func (db *Database) RowCount(table string) int {
	t := db.lookup(table)
	if t == nil {
		return 0
	}
	return len(t.Rows)
}

// RowWidth estimates the average row width in bytes for page accounting.
func (t *Table) RowWidth() int {
	if len(t.Rows) == 0 {
		return 8 * len(t.Def.Columns)
	}
	width := 0
	sample := t.Rows[0]
	for _, v := range sample {
		switch v.K {
		case catalog.KindString:
			width += len(v.S) + 4
		default:
			width += 8
		}
	}
	if width == 0 {
		width = 8
	}
	return width
}

// Pages returns the number of data pages the table occupies under the
// catalog's page size.
func (db *Database) Pages(table string) int64 {
	t := db.lookup(table)
	if t == nil || len(t.Rows) == 0 {
		return 1
	}
	pageSize := db.Catalog.Config.PageSizeBytes
	if pageSize <= 0 {
		pageSize = 4096
	}
	rowsPerPage := pageSize / int64(t.RowWidth())
	if rowsPerPage < 1 {
		rowsPerPage = 1
	}
	pages := (int64(len(t.Rows)) + rowsPerPage - 1) / rowsPerPage
	if pages < 1 {
		pages = 1
	}
	return pages
}

// RowsPerPage returns how many rows fit on one page of the table.
func (db *Database) RowsPerPage(table string) int64 {
	t := db.lookup(table)
	if t == nil {
		return 1
	}
	pageSize := db.Catalog.Config.PageSizeBytes
	if pageSize <= 0 {
		pageSize = 4096
	}
	rpp := pageSize / int64(t.RowWidth())
	if rpp < 1 {
		rpp = 1
	}
	return rpp
}

// Index returns the materialized index data for the named index on the
// table, building it on first use. Returns nil when the index is not defined.
func (db *Database) Index(table, indexName string) *IndexData {
	t := db.Table(table)
	if t == nil {
		return nil
	}
	key := strings.ToUpper(indexName)
	t.idxMu.RLock()
	idx, ok := t.indexes[key]
	t.idxMu.RUnlock()
	if ok {
		return idx
	}
	def := t.Def.IndexByName(key)
	if def == nil {
		return nil
	}
	idx = buildIndex(t, def)
	t.idxMu.Lock()
	t.indexes[key] = idx
	t.idxMu.Unlock()
	return idx
}

// IndexOnColumn returns a built index whose leading column matches, or nil.
func (db *Database) IndexOnColumn(table, column string) *IndexData {
	t := db.Table(table)
	if t == nil {
		return nil
	}
	def := t.Def.IndexOn(column)
	if def == nil {
		return nil
	}
	return db.Index(table, def.Name)
}

func buildIndex(t *Table, def *catalog.Index) *IndexData {
	pos := make([]int, len(def.Columns))
	for i, c := range def.Columns {
		pos[i] = t.Def.ColumnIndex(c)
	}
	idx := &IndexData{Def: def, colPos: pos}
	idx.Entries = make([]IndexEntry, 0, len(t.Rows))
	for rid, row := range t.Rows {
		key := make([]catalog.Value, len(pos))
		for i, p := range pos {
			if p >= 0 && p < len(row) {
				key[i] = row[p]
			}
		}
		idx.Entries = append(idx.Entries, IndexEntry{Key: key, RowID: rid})
	}
	sort.SliceStable(idx.Entries, func(i, j int) bool {
		return compareKeys(idx.Entries[i].Key, idx.Entries[j].Key) < 0
	})
	return idx
}

func compareKeys(a, b []catalog.Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := catalog.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return len(a) - len(b)
}

// PositionsEqual returns the half-open entry range [start, end) whose leading
// index key equals v. Iterating positions avoids materializing a row-ID list,
// which is what lets the streaming executor pull index candidates lazily.
func (idx *IndexData) PositionsEqual(v catalog.Value) (start, end int) {
	if v.IsNull() {
		return 0, 0
	}
	start = sort.Search(len(idx.Entries), func(i int) bool {
		return catalog.Compare(idx.Entries[i].Key[0], v) >= 0
	})
	end = start
	for end < len(idx.Entries) && catalog.Equal(idx.Entries[end].Key[0], v) {
		end++
	}
	return start, end
}

// PositionsRange returns the half-open entry range [start, end) whose leading
// key lies in [lo, hi]; a nil bound is unbounded on that side.
func (idx *IndexData) PositionsRange(lo, hi *catalog.Value) (start, end int) {
	if lo != nil {
		start = sort.Search(len(idx.Entries), func(i int) bool {
			return catalog.Compare(idx.Entries[i].Key[0], *lo) >= 0
		})
	}
	end = len(idx.Entries)
	if hi != nil {
		end = start + sort.Search(len(idx.Entries)-start, func(i int) bool {
			return catalog.Compare(idx.Entries[start+i].Key[0], *hi) > 0
		})
	}
	if end < start {
		end = start
	}
	return start, end
}

// LookupEqual returns the row IDs whose leading index key equals v.
func (idx *IndexData) LookupEqual(v catalog.Value) []int {
	start, end := idx.PositionsEqual(v)
	var out []int
	for i := start; i < end; i++ {
		out = append(out, idx.Entries[i].RowID)
	}
	return out
}

// LookupRange returns row IDs whose leading key lies in [lo, hi]; a nil bound
// is unbounded on that side.
func (idx *IndexData) LookupRange(lo, hi *catalog.Value) []int {
	start, end := idx.PositionsRange(lo, hi)
	var out []int
	for i := start; i < end; i++ {
		out = append(out, idx.Entries[i].RowID)
	}
	return out
}

// Len returns the number of entries in the index.
func (idx *IndexData) Len() int { return len(idx.Entries) }

// SplitRange splits the half-open position range [lo, hi) into at most parts
// contiguous, near-equal, non-empty sub-ranges. The executor's exchange
// operator partitions scans with it: contiguous sub-ranges concatenated in
// order reproduce the original scan order exactly.
func SplitRange(lo, hi, parts int) [][2]int {
	n := hi - lo
	if n <= 0 || parts <= 1 {
		return [][2]int{{lo, hi}}
	}
	if parts > n {
		parts = n
	}
	out := make([][2]int, 0, parts)
	for i := 0; i < parts; i++ {
		out = append(out, [2]int{lo + i*n/parts, lo + (i+1)*n/parts})
	}
	return out
}

// Value returns the value of the named column in the row of the given table
// definition, or NULL when absent.
func Value(def *catalog.Table, row Row, column string) catalog.Value {
	i := def.ColumnIndex(column)
	if i < 0 || i >= len(row) {
		return catalog.Null()
	}
	return row[i]
}

// DistinctCount counts the number of distinct non-null values of a column.
func (db *Database) DistinctCount(table, column string) int {
	t := db.lookup(table)
	if t == nil {
		return 0
	}
	ci := t.Def.ColumnIndex(column)
	if ci < 0 {
		return 0
	}
	seen := make(map[string]struct{})
	for _, r := range t.Rows {
		if r[ci].IsNull() {
			continue
		}
		seen[r[ci].Key()] = struct{}{}
	}
	return len(seen)
}

// CountWhereEqual counts rows where column = v (used by the learning engine's
// predicate-range sampler and by tests).
func (db *Database) CountWhereEqual(table, column string, v catalog.Value) int {
	t := db.lookup(table)
	if t == nil {
		return 0
	}
	ci := t.Def.ColumnIndex(column)
	if ci < 0 {
		return 0
	}
	n := 0
	for _, r := range t.Rows {
		if catalog.Equal(r[ci], v) {
			n++
		}
	}
	return n
}
