package storage

import (
	"fmt"
	"sort"

	"galo/internal/catalog"
)

// AnalyzeOptions controls the ANALYZE pass.
type AnalyzeOptions struct {
	// Buckets is the number of equi-depth histogram buckets per column
	// (DB2's NUM_QUANTILES). Values below 1 use DefaultAnalyzeBuckets.
	Buckets int
}

// DefaultAnalyzeBuckets is the histogram resolution used when none is given.
const DefaultAnalyzeBuckets = 32

// Analyze runs the ANALYZE-style statistics pass over one table: it builds an
// equi-depth histogram and refreshed distinct count for every column and
// installs them on the table's catalog statistics snapshot. When the table
// has no snapshot yet (RUNSTATS never ran), a minimal one is created first so
// that ANALYZE alone is enough to give the optimizer statistics.
//
// Like its real-world counterpart, ANALYZE describes the data as of the time
// it runs: rows inserted afterwards are invisible to the histogram until the
// next pass. That window is where the paper's Figure 8 misestimation lives.
func Analyze(db *Database, table string, opts AnalyzeOptions) error {
	t := db.lookup(table)
	if t == nil {
		return fmt.Errorf("storage: analyze of unknown table %s", table)
	}
	buckets := opts.Buckets
	if buckets < 1 {
		buckets = DefaultAnalyzeBuckets
	}
	ts := db.Catalog.Stats(table)
	if ts == nil {
		ts = &catalog.TableStats{
			Table:       t.Def.Name,
			Columns:     make(map[string]*catalog.ColumnStats, len(t.Def.Columns)),
			StaleFactor: 1.0,
		}
	}
	// The pass snapshots the table as of now: an existing (possibly stale)
	// snapshot is refreshed wholesale, table-level counters included.
	ts.Cardinality = int64(len(t.Rows))
	ts.Pages = db.Pages(t.Def.Name)
	ts.RowWidth = t.RowWidth()
	for ci, col := range t.Def.Columns {
		values := make([]catalog.Value, 0, len(t.Rows))
		nulls := int64(0)
		for _, row := range t.Rows {
			if row[ci].IsNull() {
				nulls++
				continue
			}
			values = append(values, row[ci])
		}
		hist := BuildEquiDepthHistogram(values, buckets)
		cs := ts.Columns[col.Name]
		if cs == nil {
			cs = &catalog.ColumnStats{Column: col.Name}
			ts.Columns[col.Name] = cs
		}
		cs.RowCount = ts.Cardinality
		cs.Histogram = hist
		cs.NullCount = nulls
		if hist != nil {
			cs.Min = hist.Min
			cs.Max = hist.Max()
			ndv := int64(0)
			for _, b := range hist.Buckets {
				ndv += b.NDV
			}
			cs.NDV = ndv
		}
	}
	db.Catalog.SetStats(ts)
	return nil
}

// AnalyzeAll runs Analyze over every table that holds rows.
func AnalyzeAll(db *Database, opts AnalyzeOptions) error {
	for _, name := range db.TableNames() {
		if err := Analyze(db, name, opts); err != nil {
			return err
		}
	}
	return nil
}

// BuildEquiDepthHistogram builds an equi-depth histogram over the given
// non-null values. Bucket boundaries never split a run of equal values, so a
// heavily repeated value ends up alone in (possibly) an oversized bucket —
// which is what makes equi-depth histograms robust to skew. Returns nil for
// an empty input.
func BuildEquiDepthHistogram(values []catalog.Value, buckets int) *catalog.Histogram {
	if len(values) == 0 {
		return nil
	}
	if buckets < 1 {
		buckets = DefaultAnalyzeBuckets
	}
	sorted := append([]catalog.Value(nil), values...)
	sort.SliceStable(sorted, func(i, j int) bool { return catalog.Compare(sorted[i], sorted[j]) < 0 })

	h := &catalog.Histogram{Min: sorted[0], Rows: int64(len(sorted))}
	depth := (len(sorted) + buckets - 1) / buckets
	if depth < 1 {
		depth = 1
	}
	i := 0
	for i < len(sorted) {
		end := i + depth
		if end > len(sorted) {
			end = len(sorted)
		}
		// Extend the bucket so it closes on a value boundary.
		for end < len(sorted) && catalog.Equal(sorted[end], sorted[end-1]) {
			end++
		}
		count := int64(end - i)
		ndv := int64(1)
		for k := i + 1; k < end; k++ {
			if !catalog.Equal(sorted[k], sorted[k-1]) {
				ndv++
			}
		}
		h.Buckets = append(h.Buckets, catalog.Bucket{Hi: sorted[end-1], Count: count, NDV: ndv})
		i = end
	}
	return h
}
