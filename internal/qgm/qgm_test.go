package qgm

import (
	"strings"
	"testing"
)

// figure1aPlan builds the plan of the paper's Figure 1a: an MSJOIN between
// OPEN_IN (Q1) via IXSCAN and ENTRY_IDX (Q2) via IXSCAN read through a sort.
func figure1aPlan() *Plan {
	openIn := &Node{Op: OpIXSCAN, Table: "OPEN_IN", TableInstance: "Q1", Index: "OPEN_IN_IDX", EstCardinality: 1.1832e7}
	entryIdx := &Node{Op: OpIXSCAN, Table: "ENTRY_IDX", TableInstance: "Q2", Index: "ENTRY_IDX_IDX", EstCardinality: 1.22525e7}
	sorted := &Node{Op: OpSORT, Outer: entryIdx, EstCardinality: 1.22525e7}
	join := &Node{Op: OpMSJOIN, Outer: openIn, Inner: sorted, EstCardinality: 2.94925e6, EstCost: 207647}
	return NewPlan(join)
}

// figure1bPlan builds the GALO rewrite of Figure 1b: HSJOIN with swapped
// inputs and no sort.
func figure1bPlan() *Plan {
	openIn := &Node{Op: OpIXSCAN, Table: "OPEN_IN", TableInstance: "Q1", Index: "OPEN_IN_IDX", EstCardinality: 1.1832e7}
	entryIdx := &Node{Op: OpIXSCAN, Table: "ENTRY_IDX", TableInstance: "Q2", Index: "ENTRY_IDX_IDX", EstCardinality: 1.22525e7}
	join := &Node{Op: OpHSJOIN, Outer: entryIdx, Inner: openIn, EstCardinality: 2.94925e6, EstCost: 90210}
	return NewPlan(join)
}

func TestNewPlanAddsReturnAndIDs(t *testing.T) {
	p := figure1aPlan()
	if p.Root.Op != OpRETURN {
		t.Fatalf("root = %s", p.Root.Op)
	}
	if p.Root.ID != 1 {
		t.Errorf("RETURN should be operator 1, got %d", p.Root.ID)
	}
	ids := map[int]bool{}
	for _, op := range p.Operators() {
		if ids[op.ID] {
			t.Errorf("duplicate ID %d", op.ID)
		}
		ids[op.ID] = true
	}
	if len(ids) != p.NumOps() {
		t.Errorf("ID count mismatch")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPlanAccessors(t *testing.T) {
	p := figure1aPlan()
	if p.NumJoins() != 1 {
		t.Errorf("NumJoins = %d", p.NumJoins())
	}
	if p.NumOps() != 5 {
		t.Errorf("NumOps = %d", p.NumOps())
	}
	inst := p.TableInstances()
	if inst["Q1"] != "OPEN_IN" || inst["Q2"] != "ENTRY_IDX" {
		t.Errorf("TableInstances = %v", inst)
	}
	join := p.Root.Joins()[0]
	if len(join.Tables()) != 2 {
		t.Errorf("join Tables = %v", join.Tables())
	}
	scans := p.Root.Scans()
	if len(scans) != 2 {
		t.Errorf("Scans = %d", len(scans))
	}
	if p.Find(join.ID) != join {
		t.Errorf("Find did not return the join")
	}
	if p.Find(999) != nil {
		t.Errorf("Find(999) should be nil")
	}
}

func TestSignatureDistinguishesPlans(t *testing.T) {
	a, b := figure1aPlan(), figure1bPlan()
	if a.Signature() == b.Signature() {
		t.Errorf("different plans share signature %q", a.Signature())
	}
	if a.Signature() != figure1aPlan().Signature() {
		t.Errorf("signature not deterministic")
	}
	// Shape signature abstracts instances but keeps operators.
	join := a.Root.Joins()[0]
	if !strings.Contains(join.ShapeSignature(), "MSJOIN") {
		t.Errorf("ShapeSignature = %q", join.ShapeSignature())
	}
	if strings.Contains(join.ShapeSignature(), "Q1") {
		t.Errorf("ShapeSignature should not mention table instances")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := figure1aPlan()
	c := p.Clone()
	c.Root.Joins()[0].Op = OpNLJOIN
	c.Root.Scans()[0].Table = "CHANGED"
	if p.Root.Joins()[0].Op != OpMSJOIN {
		t.Errorf("clone mutation leaked into original (join)")
	}
	for _, s := range p.Root.Scans() {
		if s.Table == "CHANGED" {
			t.Errorf("clone mutation leaked into original (scan)")
		}
	}
}

func TestValidateCatchesBrokenPlans(t *testing.T) {
	// Join with one child.
	bad := NewPlan(&Node{Op: OpHSJOIN, Outer: &Node{Op: OpTBSCAN, Table: "T", TableInstance: "Q1"}})
	if err := bad.Validate(); err == nil {
		t.Errorf("join with one input should fail validation")
	}
	// Scan with a child.
	bad2 := NewPlan(&Node{Op: OpTBSCAN, Table: "T", TableInstance: "Q1",
		Outer: &Node{Op: OpTBSCAN, Table: "U", TableInstance: "Q2"}})
	if err := bad2.Validate(); err == nil {
		t.Errorf("scan with a child should fail validation")
	}
	// IXSCAN without index name.
	bad3 := NewPlan(&Node{Op: OpIXSCAN, Table: "T", TableInstance: "Q1"})
	if err := bad3.Validate(); err == nil {
		t.Errorf("IXSCAN without index should fail validation")
	}
	// Scan without instance.
	bad4 := NewPlan(&Node{Op: OpTBSCAN, Table: "T"})
	if err := bad4.Validate(); err == nil {
		t.Errorf("scan without table instance should fail validation")
	}
	var empty Plan
	if err := empty.Validate(); err == nil {
		t.Errorf("empty plan should fail validation")
	}
}

func threeJoinPlan() *Plan {
	s1 := &Node{Op: OpTBSCAN, Table: "CATALOG_SALES", TableInstance: "Q2", EstCardinality: 1.441e6}
	s2 := &Node{Op: OpTBSCAN, Table: "CUSTOMER_ADDRESS", TableInstance: "Q1", EstCardinality: 50000}
	s3 := &Node{Op: OpTBSCAN, Table: "CATALOG_SALES", TableInstance: "Q4", EstCardinality: 1.441e6}
	s4 := &Node{Op: OpIXSCAN, Table: "DATE_DIM", TableInstance: "Q3", Index: "D_DATE_SK", EstCardinality: 73049}
	j5 := &Node{Op: OpHSJOIN, Outer: s3, Inner: s2, EstCardinality: 128500}
	j3 := &Node{Op: OpHSJOIN, Outer: s1, Inner: j5, EstCardinality: 964783}
	j2 := &Node{Op: OpHSJOIN, Outer: j3, Inner: s4, EstCardinality: 13.1688, EstCost: 5000}
	return NewPlan(j2)
}

func TestEnumerateSubPlans(t *testing.T) {
	p := threeJoinPlan()
	subs := p.EnumerateSubPlans(4)
	if len(subs) != 3 {
		t.Fatalf("EnumerateSubPlans(4) returned %d fragments, want 3", len(subs))
	}
	// Bottom-up: the single-join fragment comes first.
	if subs[0].Joins != 1 {
		t.Errorf("first fragment has %d joins, want 1", subs[0].Joins)
	}
	if subs[len(subs)-1].Joins != 3 {
		t.Errorf("last fragment has %d joins, want 3", subs[len(subs)-1].Joins)
	}
	// Threshold caps fragment size.
	subs2 := p.EnumerateSubPlans(2)
	for _, s := range subs2 {
		if s.Joins > 2 {
			t.Errorf("fragment exceeds threshold: %d joins", s.Joins)
		}
	}
	if len(subs2) != 2 {
		t.Errorf("EnumerateSubPlans(2) returned %d fragments, want 2", len(subs2))
	}
	if got := p.EnumerateSubPlans(0); len(got) != 0 {
		t.Errorf("threshold 0 should return no fragments, got %d", len(got))
	}
}

func TestReplaceSubtree(t *testing.T) {
	p := threeJoinPlan()
	// Replace the deepest join (HSJOIN over Q4, Q1) with an NLJOIN variant.
	deepest := p.EnumerateSubPlans(1)[0].Root
	replacement := &Node{Op: OpNLJOIN,
		Outer: &Node{Op: OpTBSCAN, Table: "CUSTOMER_ADDRESS", TableInstance: "Q1", EstCardinality: 50000},
		Inner: &Node{Op: OpFETCH, Table: "CATALOG_SALES", TableInstance: "Q4", Index: "CS_IDX", EstCardinality: 1.441e6},
	}
	if !p.ReplaceSubtree(deepest.ID, replacement) {
		t.Fatalf("ReplaceSubtree failed")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("plan invalid after replace: %v", err)
	}
	if !strings.Contains(p.Signature(), "NLJOIN") {
		t.Errorf("replacement not present in signature: %s", p.Signature())
	}
	if p.ReplaceSubtree(9999, replacement) {
		t.Errorf("ReplaceSubtree with unknown ID should return false")
	}
	// Replacing the root swaps the whole plan.
	p2 := threeJoinPlan()
	rootID := p2.Root.ID
	if !p2.ReplaceSubtree(rootID, replacement.Clone()) {
		t.Fatalf("root replacement failed")
	}
	if p2.Root.Op != OpRETURN {
		t.Errorf("root after replacement = %s", p2.Root.Op)
	}
}

func TestFormatShowsPaperStructure(t *testing.T) {
	p := figure1aPlan()
	p.QueryName = "CLIENT.Q08"
	text := Format(p)
	for _, want := range []string{"MSJOIN", "TB-SORT", "IXSCAN", "OPEN_IN [Q1]", "ENTRY_IDX [Q2]", "Total Cost", "CLIENT.Q08", "2.94925e+06"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format output missing %q:\n%s", want, text)
		}
	}
	if Format(nil) != "<empty plan>\n" {
		t.Errorf("Format(nil) = %q", Format(nil))
	}
}

func TestDiffPlansReportsJoinChange(t *testing.T) {
	d := DiffPlans(figure1aPlan(), figure1bPlan())
	if !strings.Contains(d, "MSJOIN") || !strings.Contains(d, "HSJOIN") {
		t.Errorf("DiffPlans output:\n%s", d)
	}
	if !strings.Contains(d, "->") {
		t.Errorf("DiffPlans should mention a join method change:\n%s", d)
	}
}

func TestOpTypeHelpers(t *testing.T) {
	if !OpHSJOIN.IsJoin() || OpTBSCAN.IsJoin() {
		t.Errorf("IsJoin misclassifies")
	}
	if !OpFETCH.IsScan() || OpHSJOIN.IsScan() {
		t.Errorf("IsScan misclassifies")
	}
	if len(JoinMethods()) != 3 {
		t.Errorf("JoinMethods = %v", JoinMethods())
	}
	n := &Node{Op: OpSORT}
	if n.OpLabel() != "TB-SORT" {
		t.Errorf("OpLabel(SORT) = %q", n.OpLabel())
	}
	s := &Node{Op: OpTBSCAN, Table: "ITEM", TableInstance: "Q3", ID: 7}
	if got := s.String(); !strings.Contains(got, "ITEM[Q3]") || !strings.Contains(got, "TBSCAN(7)") {
		t.Errorf("String() = %q", got)
	}
}
