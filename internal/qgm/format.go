package qgm

import (
	"fmt"
	"strings"
)

// Format renders the plan as an indented operator tree in the style of the
// paper's figures (and of db2exfmt): estimated cardinality on top, operator
// label and ID, and — for base table accesses — the table cardinality, name
// and instance below.
//
//	2.94925e+06
//	MSJOIN
//	(   2)
//	 |-- 1.1832e+07
//	 |   IXSCAN
//	 |   (   3)
//	 |     6.72337e+07 OPEN_IN [Q1]
//	 ...
func Format(p *Plan) string {
	if p == nil || p.Root == nil {
		return "<empty plan>\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Access Plan:\n")
	if p.QueryName != "" {
		fmt.Fprintf(&b, "Query: %s\n", p.QueryName)
	}
	fmt.Fprintf(&b, "Total Cost: %.4f timerons\n\n", p.TotalCost)
	formatNode(&b, p.Root, "")
	return b.String()
}

func formatNode(b *strings.Builder, n *Node, indent string) {
	fmt.Fprintf(b, "%s%s\n", indent, formatCard(n.EstCardinality))
	fmt.Fprintf(b, "%s%s\n", indent, n.OpLabel())
	fmt.Fprintf(b, "%s(%4d)\n", indent, n.ID)
	if n.BloomFilter {
		fmt.Fprintf(b, "%s[bloom filter]\n", indent)
	}
	for _, pred := range n.Predicates {
		fmt.Fprintf(b, "%spredicate: %s\n", indent, pred)
	}
	if n.Table != "" {
		detail := n.Table
		if n.TableInstance != "" {
			detail += " [" + n.TableInstance + "]"
		}
		if n.Index != "" {
			detail += " via " + n.Index
		}
		fmt.Fprintf(b, "%s  %s\n", indent, detail)
	}
	children := n.Children()
	for i, c := range children {
		role := "outer"
		if i == 1 {
			role = "inner"
		}
		if len(children) > 1 {
			fmt.Fprintf(b, "%s%s:\n", indent+"  ", role)
		}
		formatNode(b, c, indent+"    ")
	}
}

func formatCard(card float64) string {
	if card >= 1e6 {
		return fmt.Sprintf("%.5e", card)
	}
	return fmt.Sprintf("%g", card)
}

// DiffPlans renders a compact textual diff of the operator structure of two
// plans, used by the learning engine's reports and by EXPERIMENTS.md
// generation. It lists the signature of each plan and the operators that
// changed type or position.
func DiffPlans(before, after *Plan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "before: %s\n", before.Signature())
	fmt.Fprintf(&b, "after:  %s\n", after.Signature())
	beforeJoins := joinMethodsByTables(before)
	afterJoins := joinMethodsByTables(after)
	for tables, method := range beforeJoins {
		if am, ok := afterJoins[tables]; ok && am != method {
			fmt.Fprintf(&b, "join over {%s}: %s -> %s\n", tables, method, am)
		}
	}
	return b.String()
}

func joinMethodsByTables(p *Plan) map[string]OpType {
	out := map[string]OpType{}
	if p == nil || p.Root == nil {
		return out
	}
	p.Root.Walk(func(n *Node) {
		if n.Op.IsJoin() {
			out[strings.Join(n.Tables(), ",")] = n.Op
		}
	})
	return out
}
