// Package qgm implements the Query Graph Model: the plan representation the
// minidb optimizer produces and GALO manipulates.
//
// As in IBM DB2, a plan is a tree of low-level plan operators (LOLEPOPs) such
// as TBSCAN, IXSCAN, HSJOIN or MSJOIN, each annotated with the optimizer's
// estimated cardinality and cost, and — after execution — with the runtime
// actuals. The paper's Figures 1, 4, 7 and 8 are drawings of such trees; this
// package can render the same shape as text (see Format).
package qgm

import (
	"fmt"
	"sort"
	"strings"
)

// OpType identifies a LOLEPOP operator.
type OpType string

// Operator types. The names follow DB2's LOLEPOP vocabulary used in the
// paper.
const (
	OpTBSCAN OpType = "TBSCAN"   // full table scan
	OpIXSCAN OpType = "IXSCAN"   // index-only / index-driven scan
	OpFETCH  OpType = "F-IXSCAN" // fetch rows via an index (FETCH over IXSCAN)
	OpNLJOIN OpType = "NLJOIN"   // nested-loop join
	OpHSJOIN OpType = "HSJOIN"   // hash join
	OpMSJOIN OpType = "MSJOIN"   // sort-merge join
	OpSORT   OpType = "SORT"     // explicit sort (rendered TB-SORT when read by a scan)
	OpFILTER OpType = "FILTER"   // residual predicate application
	OpGRPBY  OpType = "GRPBY"    // grouping / aggregation
	OpRETURN OpType = "RETURN"   // plan root
)

// IsJoin reports whether the operator is one of the three join methods.
func (o OpType) IsJoin() bool {
	return o == OpNLJOIN || o == OpHSJOIN || o == OpMSJOIN
}

// IsScan reports whether the operator reads a base table.
func (o OpType) IsScan() bool {
	return o == OpTBSCAN || o == OpIXSCAN || o == OpFETCH
}

// JoinMethods lists the join operators in a stable order.
func JoinMethods() []OpType { return []OpType{OpNLJOIN, OpHSJOIN, OpMSJOIN} }

// Node is one LOLEPOP in a plan tree.
type Node struct {
	ID int
	Op OpType

	// Base-table access fields (scans only).
	Table         string // base table name, e.g. CATALOG_SALES
	TableInstance string // table reference / qualifier, e.g. Q4
	Index         string // index name for IXSCAN / F-IXSCAN

	// Estimated properties (set by the optimizer).
	EstCardinality float64
	EstCost        float64 // cumulative cost of the subtree, in timerons
	RowSize        int     // estimated output row width in bytes
	Pages          float64 // estimated pages touched by this operator

	// OrderedOn is the plan property naming the instance-qualified column
	// ("Qi.COL") the operator's output is sorted on, or "" when the output
	// carries no useful order. It is produced by index scans and SORTs,
	// preserved by joins that keep their outer input's order (HSJOIN, NLJOIN)
	// and claimed by MSJOIN for its merge column — which is how a merge join
	// proves sort-avoidance at plan time.
	OrderedOn string

	// Actual properties (set by the executor after a run).
	ActCardinality float64
	ActMillis      float64

	// Join-specific annotations.
	BloomFilter bool     // hash join builds a bloom filter on the inner
	EarlyOut    bool     // merge join may stop early on sorted inputs
	JoinCols    []string // "left=right" descriptions of the join predicate(s)

	// Predicates describes local predicates applied at this operator.
	Predicates []string

	// Children. Joins use Outer (first input) and Inner (second input);
	// unary operators use Outer only.
	Outer *Node
	Inner *Node
}

// Children returns the non-nil children, outer first.
func (n *Node) Children() []*Node {
	var out []*Node
	if n.Outer != nil {
		out = append(out, n.Outer)
	}
	if n.Inner != nil {
		out = append(out, n.Inner)
	}
	return out
}

// Walk visits the subtree rooted at n in pre-order.
func (n *Node) Walk(fn func(*Node)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children() {
		c.Walk(fn)
	}
}

// CountJoins returns the number of join operators in the subtree.
func (n *Node) CountJoins() int {
	count := 0
	n.Walk(func(x *Node) {
		if x.Op.IsJoin() {
			count++
		}
	})
	return count
}

// CountOps returns the number of LOLEPOPs in the subtree.
func (n *Node) CountOps() int {
	count := 0
	n.Walk(func(*Node) { count++ })
	return count
}

// Tables returns the distinct base table names referenced in the subtree,
// sorted.
func (n *Node) Tables() []string {
	seen := map[string]struct{}{}
	n.Walk(func(x *Node) {
		if x.Table != "" {
			seen[x.Table] = struct{}{}
		}
	})
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// TableInstances returns instance → table name for every base-table access in
// the subtree.
func (n *Node) TableInstances() map[string]string {
	out := map[string]string{}
	n.Walk(func(x *Node) {
		if x.TableInstance != "" {
			out[x.TableInstance] = x.Table
		}
	})
	return out
}

// Scans returns the scan nodes of the subtree in pre-order.
func (n *Node) Scans() []*Node {
	var out []*Node
	n.Walk(func(x *Node) {
		if x.Op.IsScan() {
			out = append(out, x)
		}
	})
	return out
}

// Joins returns the join nodes of the subtree in pre-order.
func (n *Node) Joins() []*Node {
	var out []*Node
	n.Walk(func(x *Node) {
		if x.Op.IsJoin() {
			out = append(out, x)
		}
	})
	return out
}

// Find returns the first node in the subtree with the given operator ID.
func (n *Node) Find(id int) *Node {
	var found *Node
	n.Walk(func(x *Node) {
		if found == nil && x.ID == id {
			found = x
		}
	})
	return found
}

// Clone deep-copies the subtree.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	cp := *n
	cp.JoinCols = append([]string(nil), n.JoinCols...)
	cp.Predicates = append([]string(nil), n.Predicates...)
	cp.Outer = n.Outer.Clone()
	cp.Inner = n.Inner.Clone()
	return &cp
}

// OpLabel returns the operator label as drawn in the paper's figures:
// a SORT read by a table scan appears as TB-SORT.
func (n *Node) OpLabel() string {
	if n.Op == OpSORT {
		return "TB-SORT"
	}
	return string(n.Op)
}

// Signature returns a structural fingerprint of the subtree that ignores
// operator IDs and cardinalities but keeps operator types, shape and the
// order of inputs. Two plans with the same join methods, join order and
// access methods have the same signature.
func (n *Node) Signature() string {
	if n == nil {
		return "_"
	}
	var b strings.Builder
	n.signature(&b)
	return b.String()
}

func (n *Node) signature(b *strings.Builder) {
	b.WriteString(string(n.Op))
	if n.Table != "" {
		b.WriteString(":")
		b.WriteString(n.TableInstance)
	}
	if n.BloomFilter {
		b.WriteString("+BF")
	}
	if n.Outer != nil || n.Inner != nil {
		b.WriteString("(")
		if n.Outer != nil {
			n.Outer.signature(b)
		}
		if n.Inner != nil {
			b.WriteString(",")
			n.Inner.signature(b)
		}
		b.WriteString(")")
	}
}

// ShapeSignature is like Signature but abstracts away table instances, so
// that the same plan shape over different tables compares equal. This is the
// canonical-symbol abstraction the knowledge base relies on.
func (n *Node) ShapeSignature() string {
	if n == nil {
		return "_"
	}
	var b strings.Builder
	n.shapeSignature(&b)
	return b.String()
}

func (n *Node) shapeSignature(b *strings.Builder) {
	b.WriteString(string(n.Op))
	if n.BloomFilter {
		b.WriteString("+BF")
	}
	if n.Outer != nil || n.Inner != nil {
		b.WriteString("(")
		if n.Outer != nil {
			n.Outer.shapeSignature(b)
		}
		if n.Inner != nil {
			b.WriteString(",")
			n.Inner.shapeSignature(b)
		}
		b.WriteString(")")
	}
}

// String renders a single-node summary, e.g. "HSJOIN(2) card=13.17".
func (n *Node) String() string {
	s := fmt.Sprintf("%s(%d)", n.OpLabel(), n.ID)
	if n.Table != "" {
		s += " " + n.Table
		if n.TableInstance != "" {
			s += "[" + n.TableInstance + "]"
		}
	}
	return s
}
