package qgm

import (
	"fmt"
	"sort"
	"strings"
)

// Plan is a complete query execution plan: a tree of LOLEPOPs rooted at a
// RETURN operator, plus whole-plan properties.
type Plan struct {
	Root *Node
	// QueryName labels the originating workload query (e.g. "TPCDS.Q08").
	QueryName string
	// SQL is the originating SQL text, when known.
	SQL string
	// TotalCost is the optimizer's cumulative cost estimate in timerons.
	TotalCost float64
	// EstimatedMillis is the optimizer's runtime estimate.
	EstimatedMillis float64
	// ActualMillis is filled after execution.
	ActualMillis float64
}

// NewPlan wraps a root operator into a Plan, adding a RETURN node on top if
// one is not already present, and assigns operator IDs.
func NewPlan(root *Node) *Plan {
	if root == nil {
		return &Plan{}
	}
	if root.Op != OpRETURN {
		root = &Node{Op: OpRETURN, Outer: root, EstCardinality: root.EstCardinality, EstCost: root.EstCost}
	}
	p := &Plan{Root: root, TotalCost: root.EstCost}
	p.AssignIDs()
	return p
}

// AssignIDs numbers the operators the way DB2's explain output does: the
// RETURN is #1 and the remaining operators are numbered in pre-order
// (outer before inner).
func (p *Plan) AssignIDs() {
	if p.Root == nil {
		return
	}
	id := 0
	p.Root.Walk(func(n *Node) {
		id++
		n.ID = id
	})
}

// Clone deep-copies the plan.
func (p *Plan) Clone() *Plan {
	if p == nil {
		return nil
	}
	cp := *p
	cp.Root = p.Root.Clone()
	return &cp
}

// Operators returns all LOLEPOPs in pre-order.
func (p *Plan) Operators() []*Node {
	var out []*Node
	if p.Root != nil {
		p.Root.Walk(func(n *Node) { out = append(out, n) })
	}
	return out
}

// Find returns the operator with the given ID, or nil.
func (p *Plan) Find(id int) *Node {
	if p.Root == nil {
		return nil
	}
	return p.Root.Find(id)
}

// NumJoins returns the number of join operators in the plan.
func (p *Plan) NumJoins() int {
	if p.Root == nil {
		return 0
	}
	return p.Root.CountJoins()
}

// NumOps returns the number of LOLEPOPs in the plan (the paper's measure of
// workload complexity).
func (p *Plan) NumOps() int {
	if p.Root == nil {
		return 0
	}
	return p.Root.CountOps()
}

// TableInstances returns the table-instance map of the whole plan.
func (p *Plan) TableInstances() map[string]string {
	if p.Root == nil {
		return map[string]string{}
	}
	return p.Root.TableInstances()
}

// Signature returns the structural fingerprint of the whole plan.
func (p *Plan) Signature() string {
	if p.Root == nil {
		return ""
	}
	return p.Root.Signature()
}

// ResetActuals clears the execution annotations (per-operator ActMillis and
// ActCardinality, and the plan's ActualMillis) so a re-execution — or one a
// bounded consumer stopped early, leaving deep operators unvisited — never
// reads a previous run's actuals into MaxEstimationGap.
func (p *Plan) ResetActuals() {
	if p == nil {
		return
	}
	p.ActualMillis = 0
	if p.Root == nil {
		return
	}
	p.Root.Walk(func(n *Node) {
		n.ActMillis = 0
		n.ActCardinality = 0
	})
}

// MaxEstimationGap returns the largest per-operator ratio between actual and
// estimated cardinality over the operators the executor ran (ActMillis set),
// in whichever direction the estimate erred; 1 means every estimate was
// exact, and plans that never executed report 1. This is the signal the
// online learning loop triggers on: a plan whose runtime truth diverged from
// the optimizer's beliefs is a candidate problem pattern.
func (p *Plan) MaxEstimationGap() float64 {
	worst := 1.0
	if p == nil || p.Root == nil {
		return worst
	}
	p.Root.Walk(func(n *Node) {
		if n.ActMillis <= 0 {
			return
		}
		est := n.EstCardinality
		if est < 1 {
			est = 1
		}
		act := n.ActCardinality
		if act < 1 {
			act = 1
		}
		ratio := act / est
		if ratio < 1 {
			ratio = 1 / ratio
		}
		if ratio > worst {
			worst = ratio
		}
	})
	return worst
}

// EstPeakResidencyBytes estimates the peak intermediate-row residency of
// executing the plan, in bytes: the sum over pipeline breakers of the rows
// they buffer (join builds hold the inner input, SORT holds its input, GRPBY
// holds its distinct output). The executor's memory governor admits
// executions against this estimate. A sum (rather than a max over
// concurrently-live breakers) is deliberately conservative: with a parallel
// exchange all build sides are resident at once.
func (p *Plan) EstPeakResidencyBytes() int64 {
	if p == nil || p.Root == nil {
		return 0
	}
	width := func(n *Node) float64 {
		if n == nil || n.RowSize <= 0 {
			return 64
		}
		return float64(n.RowSize)
	}
	card := func(n *Node) float64 {
		if n == nil || n.EstCardinality < 1 {
			return 1
		}
		return n.EstCardinality
	}
	var total float64
	p.Root.Walk(func(n *Node) {
		switch {
		case n.Op.IsJoin() && n.Op != OpNLJOIN:
			// Hash build / merge buffer holds the inner input.
			total += card(n.Inner) * width(n.Inner)
		case n.Op == OpSORT:
			total += card(n.Outer) * width(n.Outer)
		case n.Op == OpGRPBY:
			// Key set: output rows plus per-entry map overhead.
			total += card(n) * (width(n) + 24)
		}
	})
	const maxEst = 1 << 40 // clamp runaway estimates to 1 TiB
	if total > maxEst {
		total = maxEst
	}
	return int64(total)
}

// Validate checks structural invariants: joins have two children, scans have
// none, unary operators have exactly one, IDs are unique, and every scan
// names a table and instance.
func (p *Plan) Validate() error {
	if p.Root == nil {
		return fmt.Errorf("qgm: plan has no root")
	}
	if p.Root.Op != OpRETURN {
		return fmt.Errorf("qgm: plan root must be RETURN, got %s", p.Root.Op)
	}
	seen := map[int]bool{}
	var err error
	p.Root.Walk(func(n *Node) {
		if err != nil {
			return
		}
		if seen[n.ID] {
			err = fmt.Errorf("qgm: duplicate operator ID %d", n.ID)
			return
		}
		seen[n.ID] = true
		switch {
		case n.Op.IsJoin():
			if n.Outer == nil || n.Inner == nil {
				err = fmt.Errorf("qgm: join %s(%d) must have two inputs", n.Op, n.ID)
			}
		case n.Op.IsScan():
			if n.Outer != nil || n.Inner != nil {
				err = fmt.Errorf("qgm: scan %s(%d) must be a leaf", n.Op, n.ID)
			}
			if n.Table == "" || n.TableInstance == "" {
				err = fmt.Errorf("qgm: scan %s(%d) missing table or instance", n.Op, n.ID)
			}
			if (n.Op == OpIXSCAN || n.Op == OpFETCH) && n.Index == "" {
				err = fmt.Errorf("qgm: %s(%d) missing index name", n.Op, n.ID)
			}
		default:
			if n.Outer == nil || n.Inner != nil {
				err = fmt.Errorf("qgm: %s(%d) must have exactly one input", n.Op, n.ID)
			}
		}
	})
	return err
}

// SubPlan describes one contiguous fragment of a plan considered for
// matching or learning: the subtree rooted at Root.
type SubPlan struct {
	Root  *Node
	Joins int
	Ops   int
}

// EnumerateSubPlans returns the sub-QGMs of the plan: every subtree rooted at
// a join operator whose join count is between 1 and maxJoins. This is the
// segmentation the matching engine climbs (Section 3.3): fragments are
// considered bottom-up, capped by the same join-number threshold used during
// learning.
func (p *Plan) EnumerateSubPlans(maxJoins int) []SubPlan {
	if p.Root == nil {
		return nil
	}
	var out []SubPlan
	p.Root.Walk(func(n *Node) {
		if !n.Op.IsJoin() {
			return
		}
		j := n.CountJoins()
		if j >= 1 && j <= maxJoins {
			out = append(out, SubPlan{Root: n, Joins: j, Ops: n.CountOps()})
		}
	})
	// Bottom-up order: smaller fragments first, then by operator ID for
	// determinism.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Joins != out[j].Joins {
			return out[i].Joins < out[j].Joins
		}
		return out[i].Root.ID > out[j].Root.ID
	})
	return out
}

// ReplaceSubtree substitutes the subtree rooted at the operator with ID
// targetID by the given replacement, returning false when the target is not
// found. IDs are re-assigned afterwards.
func (p *Plan) ReplaceSubtree(targetID int, replacement *Node) bool {
	if p.Root == nil || replacement == nil {
		return false
	}
	if p.Root.ID == targetID {
		if replacement.Op != OpRETURN {
			p.Root = &Node{Op: OpRETURN, Outer: replacement}
		} else {
			p.Root = replacement
		}
		p.AssignIDs()
		return true
	}
	replaced := false
	p.Root.Walk(func(n *Node) {
		if replaced {
			return
		}
		if n.Outer != nil && n.Outer.ID == targetID {
			n.Outer = replacement
			replaced = true
			return
		}
		if n.Inner != nil && n.Inner.ID == targetID {
			n.Inner = replacement
			replaced = true
			return
		}
	})
	if replaced {
		p.AssignIDs()
	}
	return replaced
}

// Summary returns a one-line description of the plan, useful in logs:
// "cost=1234.5 joins=3 ops=9 HSJOIN(HSJOIN(TBSCAN:Q1,TBSCAN:Q2),IXSCAN:Q3)".
func (p *Plan) Summary() string {
	if p.Root == nil {
		return "<empty plan>"
	}
	return fmt.Sprintf("cost=%.1f joins=%d ops=%d %s",
		p.TotalCost, p.NumJoins(), p.NumOps(), strings.TrimPrefix(p.Signature(), "RETURN("))
}
