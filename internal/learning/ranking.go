package learning

import (
	"math/rand"

	"galo/internal/executor"
	"galo/internal/kmeans"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
)

// Measurement is the ranked runtime profile of one candidate plan.
type Measurement struct {
	Plan *qgm.Plan
	// Runs holds the raw per-run elapsed measurements (after noise), and
	// Prospective the subset kept after k-means outlier removal.
	Runs        []float64
	Prospective []float64
	// MeanMillis is the mean of the prospective runs — the ranking score.
	MeanMillis float64
	// Tie-break resource features (Section 3.2's ranking module).
	PhysicalReads int64
	LogicalReads  int64
	CPURows       int64
	SortHeapPages int64
	// SimulatedWorkMillis is the total simulated execution time spent
	// obtaining this measurement (all runs), used for the Exp-5 cost study.
	SimulatedWorkMillis float64
	// Err records an execution failure (the plan is then unrankable).
	Err error
}

// Ranker executes candidate plans repeatedly, removes anomalous runs with
// k-means clustering and ranks plans by mean elapsed time, breaking ties with
// resource-usage features — the paper's ranking module, with db2batch
// replaced by the executor's simulated runtime.
//
// By default measurements are the executor's deterministic simulated cost, so
// rankings — and everything the learning engine derives from them — are
// reproducible. The optional noise model (Noise > 0 with a NoiseRNG) layers
// multiplicative jitter plus occasional spikes on top, giving the k-means
// outlier removal realistic work; it is a jitter knob, not the source of the
// learned patterns.
type Ranker struct {
	Exec *executor.Executor
	// Runs is the number of repetitions per plan.
	Runs int
	// Noise scales the optional measurement jitter; 0 (the default) keeps
	// measurements deterministic, 1.0 reproduces a noisy shared host.
	Noise float64
	// NoiseRNG drives the jitter deterministically; nil disables it even when
	// Noise is set.
	NoiseRNG *rand.Rand
}

// Measure runs one plan and returns its measurement.
func (r *Ranker) Measure(plan *qgm.Plan, q *sqlparser.Query) Measurement {
	runs := r.Runs
	if runs < 1 {
		runs = 1
	}
	m := Measurement{Plan: plan}
	for i := 0; i < runs; i++ {
		res, err := r.Exec.Execute(plan, q)
		if err != nil {
			m.Err = err
			return m
		}
		elapsed := res.Stats.ElapsedMillis
		m.SimulatedWorkMillis += elapsed
		if r.NoiseRNG != nil && r.Noise > 0 {
			noise := 1 + r.NoiseRNG.Float64()*0.04*r.Noise
			if r.NoiseRNG.Float64() < 0.12 {
				noise *= 1 + (1.5+r.NoiseRNG.Float64())*r.Noise
			}
			elapsed *= noise
		}
		m.Runs = append(m.Runs, elapsed)
		if i == 0 {
			m.PhysicalReads = res.Stats.PhysicalReads
			m.LogicalReads = res.Stats.LogicalReads
			m.CPURows = res.Stats.CPURows
			m.SortHeapPages = res.Stats.SortHeapPages
		}
	}
	m.Prospective = kmeans.Prospective(m.Runs)
	m.MeanMillis = kmeans.Mean(m.Prospective)
	return m
}

// Rank measures every plan and returns the measurements with the best plan
// first. Ties within 2% of elapsed time are broken by physical reads, then
// CPU rows, then sort-heap usage.
func (r *Ranker) Rank(plans []*qgm.Plan, q *sqlparser.Query) []Measurement {
	ms := make([]Measurement, 0, len(plans))
	for _, p := range plans {
		ms = append(ms, r.Measure(p, q))
	}
	sortMeasurements(ms)
	return ms
}

func sortMeasurements(ms []Measurement) {
	less := func(a, b Measurement) bool {
		if a.Err != nil || b.Err != nil {
			return a.Err == nil
		}
		hi := a.MeanMillis
		if b.MeanMillis > hi {
			hi = b.MeanMillis
		}
		if hi > 0 && absF(a.MeanMillis-b.MeanMillis)/hi > 0.02 {
			return a.MeanMillis < b.MeanMillis
		}
		if a.PhysicalReads != b.PhysicalReads {
			return a.PhysicalReads < b.PhysicalReads
		}
		if a.CPURows != b.CPURows {
			return a.CPURows < b.CPURows
		}
		if a.SortHeapPages != b.SortHeapPages {
			return a.SortHeapPages < b.SortHeapPages
		}
		return a.MeanMillis < b.MeanMillis
	}
	// Insertion sort keeps this dependency-free and stable for small slices.
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && less(ms[j], ms[j-1]); j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

func absF(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}
