package learning

import (
	"math/rand"
	"strings"
	"testing"

	"galo/internal/executor"
	"galo/internal/kb"
	"galo/internal/optimizer"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
	"galo/internal/storage"
	"galo/internal/workload/tpcds"
)

var sharedDB *storage.Database

func learnDB(t *testing.T) *storage.Database {
	t.Helper()
	if sharedDB == nil {
		var err error
		sharedDB, err = tpcds.Generate(tpcds.GenOptions{Seed: 9, Scale: 0.08, Hazards: true})
		if err != nil {
			t.Fatal(err)
		}
	}
	return sharedDB
}

func fastOptions() Options {
	o := DefaultOptions()
	o.RandomPlans = 6
	o.PredicateVariants = 1
	o.Runs = 2
	o.Workers = 2
	o.MaxSubQueriesPerQuery = 12
	o.Workload = "tpcds-test"
	return o
}

func resolved(t *testing.T, q *sqlparser.Query) *sqlparser.Query {
	t.Helper()
	work := q.Clone()
	if err := sqlparser.Resolve(work, tpcds.Schema()); err != nil {
		t.Fatalf("resolve %s: %v", q.Name, err)
	}
	return work
}

func TestSubQueriesFigure3(t *testing.T) {
	q := resolved(t, tpcds.Fig3Query()) // web_sales x item x date_dim, 2 joins
	subs := SubQueries(q, 4, 64)
	// Connected subsets: {ws,item}, {ws,date}, {ws,item,date} = 3.
	if len(subs) != 3 {
		t.Fatalf("SubQueries = %d, want 3", len(subs))
	}
	var twoWay *sqlparser.Query
	for _, s := range subs {
		if len(s.From) == 2 {
			names := map[string]bool{}
			for _, tr := range s.From {
				names[tr.Table] = true
			}
			if names["WEB_SALES"] && names["ITEM"] {
				twoWay = s
			}
		}
	}
	if twoWay == nil {
		t.Fatal("web_sales x item sub-query not generated")
	}
	// The Figure 3b projection: join predicate plus the item category filter,
	// and not the date predicate.
	if twoWay.NumJoins() != 1 {
		t.Errorf("sub-query joins = %d", twoWay.NumJoins())
	}
	for _, p := range twoWay.LocalPredicates() {
		if p.Left.Column == "D_YEAR" {
			t.Errorf("date predicate leaked into the web_sales/item sub-query: %v", p)
		}
	}
	if len(twoWay.Select) == 0 {
		t.Errorf("sub-query should project columns from its tables")
	}
	// Threshold caps the size.
	capped := SubQueries(resolved(t, tpcds.WideQuery(12)), 2, 1000)
	for _, s := range capped {
		if len(s.From) > 3 {
			t.Errorf("sub-query exceeds join threshold: %d tables", len(s.From))
		}
	}
	// Cap on enumeration.
	limited := SubQueries(resolved(t, tpcds.WideQuery(20)), 4, 10)
	if len(limited) > 10 {
		t.Errorf("MaxSubQueries cap not applied: %d", len(limited))
	}
	if SubQueries(resolved(t, sqlparser.MustParse("SELECT i_item_desc FROM item")), 4, 10) != nil {
		t.Errorf("single-table query should produce no sub-queries")
	}
}

func TestStructureKeyMergesSameShape(t *testing.T) {
	a := sqlparser.MustParse(`SELECT i_item_desc FROM web_sales, item WHERE ws_item_sk = i_item_sk AND i_category = 'Music'`)
	b := sqlparser.MustParse(`SELECT i_item_desc FROM web_sales, item WHERE ws_item_sk = i_item_sk AND i_category = 'Books'`)
	c := sqlparser.MustParse(`SELECT i_item_desc FROM store_sales, item WHERE ss_item_sk = i_item_sk AND i_category = 'Music'`)
	if StructureKey(a) != StructureKey(b) {
		t.Errorf("same structure with different values should share a key")
	}
	if StructureKey(a) == StructureKey(c) {
		t.Errorf("different tables should not share a key")
	}
}

func TestPredicateVariantsSampleDatabase(t *testing.T) {
	db := learnDB(t)
	q := resolved(t, sqlparser.MustParse(`SELECT i_item_desc FROM web_sales, item WHERE ws_item_sk = i_item_sk AND i_category = 'Jewelry'`))
	gen := storage.NewGenerator(3)
	variants := PredicateVariants(db, q, 3, gen)
	if len(variants) < 2 {
		t.Fatalf("expected variants beyond the original, got %d", len(variants))
	}
	if variants[0] != q {
		t.Errorf("original query must be the first variant")
	}
	seen := map[string]bool{}
	for _, v := range variants[1:] {
		for _, p := range v.LocalPredicates() {
			if p.Left.Column == "I_CATEGORY" {
				if p.Value.S == "Jewelry" {
					t.Errorf("variant kept the original value")
				}
				seen[p.Value.S] = true
			}
		}
	}
	if len(seen) == 0 {
		t.Errorf("no sampled category values")
	}
	// No variants requested.
	if got := PredicateVariants(db, q, 0, gen); len(got) != 1 {
		t.Errorf("PredicateVariants(0) = %d", len(got))
	}
}

func TestRankerPrefersFasterPlanAndRemovesNoise(t *testing.T) {
	db := learnDB(t)
	opt := optimizer.New(db.Catalog, optimizer.DefaultOptions())
	exec := executor.New(db)
	q := sqlparser.MustParse(`SELECT i_item_desc, ss_quantity FROM store_sales, item
		WHERE ss_item_sk = i_item_sk AND i_category = 'Jewelry'`)
	good, err := opt.BuildPlan(q, optimizer.Join(qgm.OpHSJOIN,
		optimizer.Leaf("STORE_SALES"), optimizer.Leaf("ITEM")))
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately bad plan: nested loops probing the fact table with full
	// scans of the inner for every outer row.
	bad, err := opt.BuildPlan(q, optimizer.Join(qgm.OpNLJOIN,
		optimizer.LeafAccess("ITEM", qgm.OpTBSCAN, ""),
		optimizer.LeafAccess("STORE_SALES", qgm.OpTBSCAN, "")))
	if err != nil {
		t.Fatal(err)
	}
	ranker := &Ranker{Exec: exec, Runs: 4, Noise: 1, NoiseRNG: rand.New(rand.NewSource(1))}
	m := ranker.Measure(good, q)
	if m.Err != nil {
		t.Fatalf("Measure: %v", m.Err)
	}
	if len(m.Runs) != 4 || m.MeanMillis <= 0 {
		t.Errorf("measurement = %+v", m)
	}
	if len(m.Prospective) == 0 || len(m.Prospective) > len(m.Runs) {
		t.Errorf("prospective runs = %d of %d", len(m.Prospective), len(m.Runs))
	}
	ranked := ranker.Rank([]*qgm.Plan{bad, good}, q)
	if len(ranked) != 2 || ranked[0].Err != nil {
		t.Fatalf("Rank failed: %+v", ranked)
	}
	if ranked[0].Plan.Signature() != good.Signature() {
		t.Errorf("ranker preferred the slower plan: best mean %.2f vs %.2f",
			ranked[0].MeanMillis, ranked[1].MeanMillis)
	}
}

func TestLearnQueryFindsRewritesOnHazardousWorkload(t *testing.T) {
	db := learnDB(t)
	knowledge := kb.New()
	eng := New(db, knowledge, fastOptions())
	report, err := eng.LearnQuery(tpcds.Fig8Query())
	if err != nil {
		t.Fatalf("LearnQuery: %v", err)
	}
	if report.SubQueries == 0 {
		t.Fatalf("no sub-queries analyzed")
	}
	if report.WallMillis <= 0 || report.SimulatedWorkMillis <= 0 {
		t.Errorf("timings not recorded: %+v", report)
	}
	if report.TemplatesAdded == 0 {
		t.Errorf("expected at least one template learned from the hazardous Figure 8 query (candidates=%d)", report.CandidateRewrites)
	}
	if knowledge.Size() != report.TemplatesAdded {
		t.Errorf("KB size %d != templates added %d", knowledge.Size(), report.TemplatesAdded)
	}
	for _, tmpl := range knowledge.Templates() {
		if tmpl.Improvement < eng.Opts.MinImprovement {
			t.Errorf("template improvement %v below threshold", tmpl.Improvement)
		}
		for _, scan := range tmpl.Problem.Scans() {
			if scan.Table != "" && scan.Table[:6] != "TABLE_" {
				t.Errorf("template not abstracted: %s", scan.Table)
			}
		}
		if tmpl.GuidelineXML == "" || tmpl.SourceWorkload != "tpcds-test" {
			t.Errorf("template metadata incomplete: %+v", tmpl)
		}
	}
}

// TestFig8WideMisestimationDrivesLearning is the end-to-end check of the
// honest Figure 8 hazard: with histogram statistics collected before the
// recent-window flood, the optimizer deterministically picks a merge join
// whose sorted index access looks nearly free, the executor's actuals prove
// a hash join over scans at least 2x faster, and the learning engine — with
// the noise model disabled — abstracts exactly that MSJOIN→HSJOIN rewrite
// into the knowledge base.
func TestFig8WideMisestimationDrivesLearning(t *testing.T) {
	db := learnDB(t)
	q := tpcds.Fig8WideQuery(db)
	opt := optimizer.New(db.Catalog, optimizer.DefaultOptions())
	plan := opt.MustOptimize(q)

	// The plan-time pick: an MSJOIN joining the fact table with date_dim,
	// both inputs claiming sort-avoidance (no SORT operator below the join).
	var msjoin *qgm.Node
	plan.Root.Walk(func(n *qgm.Node) {
		if n.Op == qgm.OpMSJOIN && msjoin == nil {
			msjoin = n
		}
	})
	if msjoin == nil {
		t.Fatalf("wide-range Fig 8 query did not pick a merge join:\n%s", qgm.Format(plan))
	}
	tables := msjoin.Tables()
	if len(tables) != 2 || tables[0] != "DATE_DIM" || tables[1] != "STORE_SALES" {
		t.Errorf("MSJOIN joins %v, want [DATE_DIM STORE_SALES]", tables)
	}
	if msjoin.Outer.Op == qgm.OpSORT || msjoin.Inner.Op == qgm.OpSORT {
		t.Errorf("MSJOIN should claim sort-avoidance through index order properties:\n%s", qgm.Format(plan))
	}
	if msjoin.OrderedOn == "" {
		t.Errorf("MSJOIN carries no order property")
	}

	// The runtime truth: a hash join over scans beats the picked plan >= 2x.
	ex := executor.New(db)
	picked, err := ex.Execute(plan, q)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := opt.BuildPlan(q, optimizer.Join(qgm.OpHSJOIN,
		optimizer.Join(qgm.OpHSJOIN,
			optimizer.LeafAccess("STORE_SALES", qgm.OpTBSCAN, ""),
			optimizer.LeafAccess("DATE_DIM", qgm.OpTBSCAN, "")),
		optimizer.LeafAccess("ITEM", qgm.OpTBSCAN, "")))
	if err != nil {
		t.Fatal(err)
	}
	alt, err := ex.Execute(hs, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(alt.Rows) != len(picked.Rows) {
		t.Fatalf("plans disagree on results: %d vs %d rows", len(alt.Rows), len(picked.Rows))
	}
	if alt.Stats.ElapsedMillis*2 > picked.Stats.ElapsedMillis {
		t.Errorf("hash join should be >=2x faster: MSJOIN plan %.1fms, HSJOIN plan %.1fms",
			picked.Stats.ElapsedMillis, alt.Stats.ElapsedMillis)
	}

	// The learning engine discovers the MSJOIN -> HSJOIN template from the
	// estimate/actual gap alone (NoiseScale is zero by default). A slightly
	// larger random-plan budget makes sure the 2-table plan space — which
	// contains the winning hash join over scans — is covered.
	knowledge := kb.New()
	opts := fastOptions()
	opts.RandomPlans = 12
	if opts.NoiseScale != 0 {
		t.Fatalf("noise model should be off by default, got %v", opts.NoiseScale)
	}
	eng := New(db, knowledge, opts)
	if _, err := eng.LearnWorkload([]*sqlparser.Query{q}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tmpl := range knowledge.Templates() {
		problemHasMS := false
		tmpl.Problem.Walk(func(n *qgm.Node) {
			if n.Op == qgm.OpMSJOIN {
				problemHasMS = true
			}
		})
		if problemHasMS && tmpl.Structural && strings.Contains(tmpl.GuidelineXML, "HSJOIN") {
			found = true
		}
	}
	if !found {
		t.Errorf("MSJOIN->HSJOIN template not learned (KB size %d)", knowledge.Size())
	}
}

// TestLearnWorkloadDeterministicAcrossWorkerCounts pins the satellite
// requirement that learning outcomes do not depend on goroutine scheduling:
// the same workload learns byte-identical knowledge bases at 1 and 8 workers.
func TestLearnWorkloadDeterministicAcrossWorkerCounts(t *testing.T) {
	db := learnDB(t)
	learn := func(workers int) *kb.KB {
		knowledge := kb.New()
		opts := fastOptions()
		opts.Workers = workers
		eng := New(db, knowledge, opts)
		queries := []*sqlparser.Query{tpcds.Fig3Query(), tpcds.Fig8WideQuery(db), tpcds.Fig7Query()}
		if _, err := eng.LearnWorkload(queries); err != nil {
			t.Fatal(err)
		}
		return knowledge
	}
	a, b := learn(1), learn(8)
	if a.Size() != b.Size() {
		t.Fatalf("KB size depends on worker count: %d vs %d", a.Size(), b.Size())
	}
	key := func(k *kb.KB) map[string]bool {
		set := map[string]bool{}
		for _, tmpl := range k.Templates() {
			set[tmpl.Problem.ShapeSignature()+"|"+tmpl.GuidelineXML] = true
		}
		return set
	}
	ka, kbs := key(a), key(b)
	for sig := range ka {
		if !kbs[sig] {
			t.Errorf("template learned at 1 worker missing at 8 workers: %s", sig)
		}
	}
}

func TestLearnWorkloadParallelAndDeduplicates(t *testing.T) {
	db := learnDB(t)
	knowledge := kb.New()
	eng := New(db, knowledge, fastOptions())
	queries := []*sqlparser.Query{tpcds.Fig3Query(), tpcds.Fig8Query(), tpcds.Fig7Query()}
	report, err := eng.LearnWorkload(queries)
	if err != nil {
		t.Fatalf("LearnWorkload: %v", err)
	}
	if report.QueriesAnalyzed != 3 {
		t.Errorf("QueriesAnalyzed = %d", report.QueriesAnalyzed)
	}
	if report.SubQueriesAnalyzed == 0 {
		t.Errorf("no sub-queries analyzed")
	}
	if report.TemplatesAdded != knowledge.Size() {
		t.Errorf("report/KB disagreement: %d vs %d", report.TemplatesAdded, knowledge.Size())
	}
	if report.AvgWallPerQuery() <= 0 {
		t.Errorf("AvgWallPerQuery = %v", report.AvgWallPerQuery())
	}
	// Fig3 and Fig8 share the store_sales/date_dim/item structure only
	// partially; but repeated runs over the same workload should not grow the
	// KB because structures are already known.
	sizeBefore := knowledge.Size()
	if _, err := eng.LearnWorkload(queries); err != nil {
		t.Fatal(err)
	}
	if knowledge.Size() != sizeBefore {
		t.Errorf("re-learning the same workload grew the KB from %d to %d", sizeBefore, knowledge.Size())
	}
}
