// Package learning implements GALO's learning engines.
//
// The offline engine (Engine, Section 3.2 of the paper) decomposes workload
// queries into sub-queries, varies predicate values to cover different
// reduction factors, executes and ranks competing plans from the Random
// Plan Generator against the optimizer's plan, and abstracts the winning
// rewrites into problem-pattern templates stored in the knowledge base.
//
// The online incremental learner (Online) closes the same loop at serving
// time: executed plans whose actual-vs-estimated cardinality gap clears
// OnlineOptions.GapThreshold are enqueued for the identical per-query
// analysis, and winning templates are promoted into the next knowledge base
// epoch without a batch relearn.
//
// # Concurrency contract
//
// Offline learning fans out across Options.Workers goroutines; per-query
// random seeds are derived from query text alone, so a workload learns the
// same knowledge base at any worker count. Template publication goes
// through kb.KB.Add, which routes each template to its owning shard and
// publishes exactly one epoch there — concurrent matchers on other shards
// are unaffected.
//
// Online.Observe never blocks the serving path: the analysis queue is
// bounded (OnlineOptions.QueueSize, the first stage of the serving stack's
// admission control), and observations arriving at a full queue are dropped
// and counted. One background worker drains the queue; Close stops it after
// draining, and Flush lets tests wait for a deterministic next epoch.
package learning
