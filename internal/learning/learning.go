package learning

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"time"

	"galo/internal/executor"
	"galo/internal/guideline"
	"galo/internal/kb"
	"galo/internal/optimizer"
	"galo/internal/qgm"
	"galo/internal/randplan"
	"galo/internal/sqlparser"
	"galo/internal/storage"
	"galo/internal/transform"
)

// Options configures the learning engine.
type Options struct {
	// JoinThreshold caps sub-query size in number of joins; the paper finds
	// four to be the sweet spot.
	JoinThreshold int
	// MaxSubQueriesPerQuery caps sub-query enumeration for very wide queries.
	MaxSubQueriesPerQuery int
	// RandomPlans is how many alternative plans to request per sub-query.
	RandomPlans int
	// PredicateVariants is how many alternative predicate values to sample
	// per equality predicate when establishing property ranges.
	PredicateVariants int
	// Runs is the number of measurement repetitions per plan.
	Runs int
	// MinImprovement is the relative improvement a rewrite must show over the
	// optimizer's plan to enter the knowledge base.
	MinImprovement float64
	// BoundsSlack widens learned cardinality bounds by this factor so that
	// structurally identical plans with nearby cardinalities still match.
	BoundsSlack float64
	// Workers is the parallelism of offline learning (the paper parallelizes
	// over several machines during off-peak hours; here, over goroutines).
	Workers int
	// Seed drives random plan generation, predicate-variant sampling and —
	// when NoiseScale is set — the measurement jitter. Per-query derived
	// seeds depend only on the query text, never on worker scheduling, so a
	// workload learns the same knowledge base at any worker count.
	Seed int64
	// NoiseScale is the optional measurement-jitter knob (see Ranker.Noise).
	// Zero — the default — ranks plans on the executor's deterministic
	// simulated cost, so learned templates come from the estimate/actual gap
	// alone.
	NoiseScale float64
	// Workload labels the provenance of learned templates.
	Workload string
}

// DefaultOptions returns the configuration used in the experiments.
func DefaultOptions() Options {
	return Options{
		JoinThreshold:         4,
		MaxSubQueriesPerQuery: 48,
		RandomPlans:           8,
		PredicateVariants:     2,
		Runs:                  3,
		MinImprovement:        0.15,
		BoundsSlack:           4.0,
		Workers:               runtime.NumCPU(),
		Seed:                  1,
		Workload:              "default",
	}
}

// Engine is the offline learning engine. It remembers which sub-query
// structures it has already analyzed, so re-learning an overlapping workload
// skips known structures instead of re-deriving (and possibly duplicating)
// their templates.
type Engine struct {
	DB   *storage.Database
	KB   *kb.KB
	Opts Options

	mu   sync.Mutex
	seen map[string]bool
}

// New returns a learning engine over the database that populates the given
// knowledge base.
func New(db *storage.Database, knowledge *kb.KB, opts Options) *Engine {
	if opts.JoinThreshold <= 0 {
		opts.JoinThreshold = 4
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.BoundsSlack < 1 {
		opts.BoundsSlack = 1
	}
	return &Engine{DB: db, KB: knowledge, Opts: opts, seen: map[string]bool{}}
}

// claim marks a sub-query structure as analyzed, reporting false when it was
// already known to this engine.
func (e *Engine) claim(key string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.seen[key] {
		return false
	}
	e.seen[key] = true
	return true
}

// unclaim releases claims after a failed run, so a retry re-analyzes the
// structures this run claimed but may never have finished.
func (e *Engine) unclaim(keys []string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, k := range keys {
		delete(e.seen, k)
	}
}

// QueryReport records the learning work done for one workload query.
type QueryReport struct {
	Query             string
	SubQueries        int
	CandidateRewrites int
	TemplatesAdded    int
	// BestImprovements holds the relative improvement of each rewrite found.
	BestImprovements []float64
	// WallMillis is the wall-clock analysis time; SimulatedWorkMillis is the
	// total simulated execution time of all plans run (the dominant cost on a
	// real system and the quantity compared against experts in Exp-5).
	WallMillis          float64
	SimulatedWorkMillis float64
	SubQueryWallMillis  []float64
}

// Report summarizes learning over a workload.
type Report struct {
	Workload            string
	QueriesAnalyzed     int
	SubQueriesAnalyzed  int
	TemplatesAdded      int
	AvgImprovement      float64
	WallMillis          float64
	SimulatedWorkMillis float64
	PerQuery            []QueryReport
}

// AvgWallPerQuery returns the average wall-clock analysis time per query.
func (r *Report) AvgWallPerQuery() float64 {
	if r.QueriesAnalyzed == 0 {
		return 0
	}
	return r.WallMillis / float64(r.QueriesAnalyzed)
}

// AvgWallPerSubQuery returns the average wall-clock analysis time per
// sub-query.
func (r *Report) AvgWallPerSubQuery() float64 {
	if r.SubQueriesAnalyzed == 0 {
		return 0
	}
	total := 0.0
	count := 0
	for _, q := range r.PerQuery {
		for _, ms := range q.SubQueryWallMillis {
			total += ms
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// LearnWorkload analyzes every query of the workload in parallel and
// populates the knowledge base. Sub-queries with the same structure across
// queries are analyzed once, claimed in workload order before the parallel
// phase so the analyzed set — and with it the learned knowledge base — does
// not depend on worker scheduling.
func (e *Engine) LearnWorkload(queries []*sqlparser.Query) (*Report, error) {
	start := time.Now()
	report := &Report{Workload: e.Opts.Workload}
	var mu sync.Mutex

	// Sequential claim phase: decomposition is cheap (parse/resolve only),
	// so structures are claimed deterministically in workload order here and
	// only the expensive plan analysis fans out to the workers. Claims are
	// remembered across calls, so re-learning an overlapping workload skips
	// everything already analyzed.
	subsByQuery := make([][]*sqlparser.Query, len(queries))
	var claimed []string
	for i, q := range queries {
		subs, err := e.decompose(q)
		if err != nil {
			e.unclaim(claimed)
			return nil, fmt.Errorf("learning %s: %w", q.Name, err)
		}
		for _, sub := range subs {
			if key := StructureKey(sub); e.claim(key) {
				claimed = append(claimed, key)
				subsByQuery[i] = append(subsByQuery[i], sub)
			}
		}
	}

	type job struct {
		idx int
		q   *sqlparser.Query
	}
	jobs := make(chan job)
	results := make([]*QueryReport, len(queries))
	var wg sync.WaitGroup
	var firstErr error

	for w := 0; w < e.Opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				qr, err := e.learnSubQueries(j.q, subsByQuery[j.idx])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("learning %s: %w", j.q.Name, err)
					}
					mu.Unlock()
					continue
				}
				results[j.idx] = qr
			}
		}()
	}
	for i, q := range queries {
		jobs <- job{i, q}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		// Release this run's claims so a retry re-analyzes everything the
		// failed run may have skipped (the KB merge de-duplicates whatever
		// did complete).
		e.unclaim(claimed)
		return nil, firstErr
	}

	improvements := []float64{}
	for _, qr := range results {
		if qr == nil {
			continue
		}
		report.QueriesAnalyzed++
		report.SubQueriesAnalyzed += qr.SubQueries
		report.TemplatesAdded += qr.TemplatesAdded
		report.SimulatedWorkMillis += qr.SimulatedWorkMillis
		improvements = append(improvements, qr.BestImprovements...)
		report.PerQuery = append(report.PerQuery, *qr)
	}
	if len(improvements) > 0 {
		sum := 0.0
		for _, v := range improvements {
			sum += v
		}
		report.AvgImprovement = sum / float64(len(improvements))
	}
	report.WallMillis = float64(time.Since(start).Microseconds()) / 1000
	return report, nil
}

// LearnQuery analyzes a single query.
func (e *Engine) LearnQuery(q *sqlparser.Query) (*QueryReport, error) {
	subs, err := e.decompose(q)
	if err != nil {
		return nil, err
	}
	var kept []*sqlparser.Query
	var claimed []string
	for _, sub := range subs {
		if key := StructureKey(sub); e.claim(key) {
			claimed = append(claimed, key)
			kept = append(kept, sub)
		}
	}
	qr, err := e.learnSubQueries(q, kept)
	if err != nil {
		e.unclaim(claimed)
		return nil, err
	}
	return qr, nil
}

// decompose resolves the query against the schema and splits it into
// sub-queries up to the join threshold.
func (e *Engine) decompose(q *sqlparser.Query) ([]*sqlparser.Query, error) {
	// Decomposition needs resolved column references (to know which table
	// each predicate belongs to), so work on a resolved clone.
	work := q.Clone()
	if err := sqlparser.Resolve(work, e.DB.Catalog.Schema); err != nil {
		return nil, err
	}
	return SubQueries(work, e.Opts.JoinThreshold, e.Opts.MaxSubQueriesPerQuery), nil
}

func (e *Engine) learnSubQueries(q *sqlparser.Query, subs []*sqlparser.Query) (*QueryReport, error) {
	start := time.Now()
	qr := &QueryReport{Query: q.Name}
	opt := optimizer.New(e.DB.Catalog, optimizer.DefaultOptions())
	exec := executor.New(e.DB)
	// The per-query seed is a function of the query text alone: which worker
	// analyzes the query must never change what is learned.
	seed := e.Opts.Seed + int64(querySeed(q.SQL()))
	gen := storage.NewGenerator(seed)
	planGen := randplan.New(opt, seed)
	ranker := &Ranker{Exec: exec, Runs: e.Opts.Runs, Noise: e.Opts.NoiseScale}
	if e.Opts.NoiseScale > 0 {
		ranker.NoiseRNG = rand.New(rand.NewSource(seed))
	}

	for _, sub := range subs {
		subStart := time.Now()
		qr.SubQueries++
		candidates, work, err := e.analyzeSubQuery(sub, opt, planGen, ranker, gen)
		qr.SimulatedWorkMillis += work
		if err != nil {
			// A sub-query that cannot be analyzed (e.g. unresolvable after
			// projection) is skipped, not fatal: the paper's engine simply
			// moves on to the next sub-query.
			continue
		}
		for _, cand := range candidates {
			qr.CandidateRewrites++
			added, err := e.KB.Add(cand.template)
			if err != nil {
				return nil, err
			}
			if added {
				qr.TemplatesAdded++
			}
			qr.BestImprovements = append(qr.BestImprovements, cand.improvement)
		}
		qr.SubQueryWallMillis = append(qr.SubQueryWallMillis, float64(time.Since(subStart).Microseconds())/1000)
	}
	qr.WallMillis = float64(time.Since(start).Microseconds()) / 1000
	return qr, nil
}

// querySeed hashes a query's text into a stable seed component (FNV-1a).
func querySeed(sql string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(sql); i++ {
		h ^= uint32(sql[i])
		h *= 16777619
	}
	return h
}

// candidate is one rewrite discovered for a sub-query.
type candidate struct {
	template    *kb.Template
	improvement float64
}

// analyzeSubQuery runs the Figure-3 / Section-3.2 loop for one sub-query:
// vary predicates, generate random plans, rank against the optimizer's plan,
// and abstract winning rewrites into templates.
func (e *Engine) analyzeSubQuery(sub *sqlparser.Query, opt *optimizer.Optimizer,
	planGen *randplan.Generator, ranker *Ranker, gen *storage.Generator) ([]candidate, float64, error) {

	variants := PredicateVariants(e.DB, sub, e.Opts.PredicateVariants, gen)
	type observation struct {
		problem     *qgm.Node
		solution    *qgm.Plan
		improvement float64
	}
	groups := map[string][]observation{}
	totalWork := 0.0

	for _, variant := range variants {
		basePlan, _, err := opt.Optimize(variant)
		if err != nil {
			return nil, totalWork, err
		}
		baseline := ranker.Measure(basePlan, variant)
		totalWork += baseline.SimulatedWorkMillis
		if baseline.Err != nil {
			return nil, totalWork, baseline.Err
		}
		alts, err := planGen.RandomPlans(variant, e.Opts.RandomPlans)
		if err != nil {
			return nil, totalWork, err
		}
		if len(alts) == 0 {
			continue
		}
		ranked := ranker.Rank(alts, variant)
		for _, m := range ranked {
			totalWork += m.SimulatedWorkMillis
		}
		if baseline.MeanMillis <= 0 {
			continue
		}
		problemFrag := problemFragment(basePlan)
		if problemFrag == nil || problemFrag.CountJoins() == 0 {
			continue
		}
		// Prefer the fastest alternative whose structure actually differs
		// from the optimizer's plan: a structurally identical "winner" owes
		// its advantage to details (index choice, measurement noise) the
		// guideline language does not express, so a structurally different
		// plan clearing the improvement threshold is always the more useful
		// rewrite to store. Only when no such plan exists does the top-ranked
		// identical-structure winner survive (its match still routinizes the
		// fragment even though its guideline recommends no structural
		// change).
		var best *Measurement
		for i := range ranked {
			m := &ranked[i]
			if m.Err != nil || m.MeanMillis <= 0 {
				continue
			}
			imp := (baseline.MeanMillis - m.MeanMillis) / baseline.MeanMillis
			if imp < e.Opts.MinImprovement {
				// Ranking breaks near-ties (within 2%) by resource usage, so
				// a qualifying plan can sort after a non-qualifying one —
				// keep scanning rather than stopping at the first miss.
				continue
			}
			frag := problemFragment(m.Plan)
			if frag == nil {
				continue
			}
			if frag.Signature() != problemFrag.Signature() {
				best = m
				break
			}
			if best == nil {
				best = m
			}
		}
		if best == nil {
			continue
		}
		improvement := (baseline.MeanMillis - best.MeanMillis) / baseline.MeanMillis
		solutionFrag := problemFragment(best.Plan)
		// A structural rewrite will actually change plans during online
		// re-optimization, so a false positive regresses real queries; it
		// must confirm its win in an independent second measurement round.
		// (Non-structural templates recommend no change — a false positive
		// merely routinizes a fragment — so they are recorded as observed.)
		if solutionFrag.Signature() != problemFrag.Signature() {
			base2 := ranker.Measure(basePlan, variant)
			win2 := ranker.Measure(best.Plan, variant)
			totalWork += base2.SimulatedWorkMillis + win2.SimulatedWorkMillis
			if base2.Err != nil || win2.Err != nil || base2.MeanMillis <= 0 || win2.MeanMillis <= 0 {
				continue
			}
			confirm := (base2.MeanMillis - win2.MeanMillis) / base2.MeanMillis
			if confirm < e.Opts.MinImprovement {
				continue
			}
			if confirm < improvement {
				improvement = confirm
			}
		}
		key := problemFrag.Signature() + "=>" + solutionFrag.Signature()
		groups[key] = append(groups[key], observation{problem: problemFrag, solution: best.Plan, improvement: improvement})
	}

	var out []candidate
	for _, obs := range groups {
		tmpl, err := e.buildTemplate(sub, obs[0].problem, obs[0].solution)
		if err != nil {
			continue
		}
		if frag := problemFragment(obs[0].solution); frag != nil {
			tmpl.Structural = frag.Signature() != obs[0].problem.Signature()
		}
		// Establish property ranges across the variants that shared this
		// problem/solution pair, then widen by the slack factor.
		bounds := map[int]kb.Range{}
		for _, o := range obs {
			ids := map[int]float64{}
			o.problem.Walk(func(n *qgm.Node) { ids[n.ID] = n.EstCardinality })
			for id, card := range ids {
				if r, ok := bounds[id]; ok {
					bounds[id] = r.Widen(card)
				} else {
					bounds[id] = kb.Range{Lo: card, Hi: card}
				}
			}
		}
		for id, r := range bounds {
			bounds[id] = kb.Range{Lo: r.Lo / e.Opts.BoundsSlack, Hi: r.Hi * e.Opts.BoundsSlack}
		}
		tmpl.Bounds = bounds
		mean := 0.0
		for _, o := range obs {
			mean += o.improvement
		}
		mean /= float64(len(obs))
		tmpl.Improvement = mean
		out = append(out, candidate{template: tmpl, improvement: mean})
	}
	return out, totalWork, nil
}

// problemFragment extracts the join-rooted fragment below RETURN (and any
// final SORT/GRPBY operators) of a plan.
func problemFragment(p *qgm.Plan) *qgm.Node {
	if p == nil || p.Root == nil {
		return nil
	}
	n := p.Root
	for n != nil && !n.Op.IsJoin() && !n.Op.IsScan() {
		n = n.Outer
	}
	return n
}

// buildTemplate abstracts a problem/solution pair into a knowledge base
// template: canonical labels replace table names, and the solution becomes an
// OPTGUIDELINES document whose TABIDs are canonical labels.
func (e *Engine) buildTemplate(sub *sqlparser.Query, problem *qgm.Node, solution *qgm.Plan) (*kb.Template, error) {
	labels := transform.CanonicalLabels(problem)
	abstractProblem := transform.Abstract(problem, labels)
	// Re-assign IDs on the abstracted fragment so bounds keyed by operator ID
	// are stable for the template.
	wrapped := qgm.NewPlan(abstractProblem.Clone())
	abstractProblem = wrapped.Root.Outer

	doc, err := guideline.FromPlan(solution)
	if err != nil {
		return nil, err
	}
	for _, g := range doc.Guidelines {
		canonicalizeGuideline(g, labels)
	}
	xmlText, err := doc.XML()
	if err != nil {
		return nil, err
	}
	return &kb.Template{
		Problem:        abstractProblem,
		GuidelineXML:   xmlText,
		SourceQuery:    sub.Name,
		SourceWorkload: e.Opts.Workload,
		Joins:          abstractProblem.CountJoins(),
	}, nil
}

// canonicalizeGuideline replaces concrete table instances with canonical
// labels and strips index names (indexes are context specific; the access
// method is what generalizes).
func canonicalizeGuideline(g *guideline.Element, labels map[string]string) {
	if g == nil {
		return
	}
	if g.TabID != "" {
		if label, ok := labels[strings.ToUpper(g.TabID)]; ok {
			g.TabID = label
		}
	}
	g.Table = ""
	g.Index = ""
	for _, c := range g.Children {
		canonicalizeGuideline(c, labels)
	}
}
