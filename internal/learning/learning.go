// Package learning implements GALO's offline learning engine (Section 3.2 of
// the paper): workload queries are decomposed into sub-queries, predicate
// values are varied to cover different reduction factors, competing plans
// from the Random Plan Generator are executed and ranked against the
// optimizer's plan, and the winning rewrites are abstracted into
// problem-pattern templates stored in the knowledge base.
package learning

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"time"

	"galo/internal/executor"
	"galo/internal/guideline"
	"galo/internal/kb"
	"galo/internal/optimizer"
	"galo/internal/qgm"
	"galo/internal/randplan"
	"galo/internal/sqlparser"
	"galo/internal/storage"
	"galo/internal/transform"
)

// Options configures the learning engine.
type Options struct {
	// JoinThreshold caps sub-query size in number of joins; the paper finds
	// four to be the sweet spot.
	JoinThreshold int
	// MaxSubQueriesPerQuery caps sub-query enumeration for very wide queries.
	MaxSubQueriesPerQuery int
	// RandomPlans is how many alternative plans to request per sub-query.
	RandomPlans int
	// PredicateVariants is how many alternative predicate values to sample
	// per equality predicate when establishing property ranges.
	PredicateVariants int
	// Runs is the number of measurement repetitions per plan.
	Runs int
	// MinImprovement is the relative improvement a rewrite must show over the
	// optimizer's plan to enter the knowledge base.
	MinImprovement float64
	// BoundsSlack widens learned cardinality bounds by this factor so that
	// structurally identical plans with nearby cardinalities still match.
	BoundsSlack float64
	// Workers is the parallelism of offline learning (the paper parallelizes
	// over several machines during off-peak hours; here, over goroutines).
	Workers int
	// Seed drives random plan generation and measurement noise.
	Seed int64
	// Workload labels the provenance of learned templates.
	Workload string
}

// DefaultOptions returns the configuration used in the experiments.
func DefaultOptions() Options {
	return Options{
		JoinThreshold:         4,
		MaxSubQueriesPerQuery: 48,
		RandomPlans:           8,
		PredicateVariants:     2,
		Runs:                  3,
		MinImprovement:        0.15,
		BoundsSlack:           4.0,
		Workers:               runtime.NumCPU(),
		Seed:                  1,
		Workload:              "default",
	}
}

// Engine is the offline learning engine.
type Engine struct {
	DB   *storage.Database
	KB   *kb.KB
	Opts Options
}

// New returns a learning engine over the database that populates the given
// knowledge base.
func New(db *storage.Database, knowledge *kb.KB, opts Options) *Engine {
	if opts.JoinThreshold <= 0 {
		opts.JoinThreshold = 4
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.BoundsSlack < 1 {
		opts.BoundsSlack = 1
	}
	return &Engine{DB: db, KB: knowledge, Opts: opts}
}

// QueryReport records the learning work done for one workload query.
type QueryReport struct {
	Query             string
	SubQueries        int
	CandidateRewrites int
	TemplatesAdded    int
	// BestImprovements holds the relative improvement of each rewrite found.
	BestImprovements []float64
	// WallMillis is the wall-clock analysis time; SimulatedWorkMillis is the
	// total simulated execution time of all plans run (the dominant cost on a
	// real system and the quantity compared against experts in Exp-5).
	WallMillis          float64
	SimulatedWorkMillis float64
	SubQueryWallMillis  []float64
}

// Report summarizes learning over a workload.
type Report struct {
	Workload            string
	QueriesAnalyzed     int
	SubQueriesAnalyzed  int
	TemplatesAdded      int
	AvgImprovement      float64
	WallMillis          float64
	SimulatedWorkMillis float64
	PerQuery            []QueryReport
}

// AvgWallPerQuery returns the average wall-clock analysis time per query.
func (r *Report) AvgWallPerQuery() float64 {
	if r.QueriesAnalyzed == 0 {
		return 0
	}
	return r.WallMillis / float64(r.QueriesAnalyzed)
}

// AvgWallPerSubQuery returns the average wall-clock analysis time per
// sub-query.
func (r *Report) AvgWallPerSubQuery() float64 {
	if r.SubQueriesAnalyzed == 0 {
		return 0
	}
	total := 0.0
	count := 0
	for _, q := range r.PerQuery {
		for _, ms := range q.SubQueryWallMillis {
			total += ms
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// LearnWorkload analyzes every query of the workload in parallel and
// populates the knowledge base. Sub-queries with the same structure across
// queries are analyzed once.
func (e *Engine) LearnWorkload(queries []*sqlparser.Query) (*Report, error) {
	start := time.Now()
	report := &Report{Workload: e.Opts.Workload}
	var mu sync.Mutex
	seenStructures := map[string]bool{}

	type job struct {
		idx int
		q   *sqlparser.Query
	}
	jobs := make(chan job)
	results := make([]*QueryReport, len(queries))
	var wg sync.WaitGroup
	var firstErr error

	for w := 0; w < e.Opts.Workers; w++ {
		wg.Add(1)
		go func(workerID int) {
			defer wg.Done()
			for j := range jobs {
				qr, err := e.learnQueryShared(j.q, int64(workerID), seenStructures, &mu)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("learning %s: %w", j.q.Name, err)
					}
					mu.Unlock()
					continue
				}
				results[j.idx] = qr
			}
		}(w)
	}
	for i, q := range queries {
		jobs <- job{i, q}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	improvements := []float64{}
	for _, qr := range results {
		if qr == nil {
			continue
		}
		report.QueriesAnalyzed++
		report.SubQueriesAnalyzed += qr.SubQueries
		report.TemplatesAdded += qr.TemplatesAdded
		report.SimulatedWorkMillis += qr.SimulatedWorkMillis
		improvements = append(improvements, qr.BestImprovements...)
		report.PerQuery = append(report.PerQuery, *qr)
	}
	if len(improvements) > 0 {
		sum := 0.0
		for _, v := range improvements {
			sum += v
		}
		report.AvgImprovement = sum / float64(len(improvements))
	}
	report.WallMillis = float64(time.Since(start).Microseconds()) / 1000
	return report, nil
}

// LearnQuery analyzes a single query.
func (e *Engine) LearnQuery(q *sqlparser.Query) (*QueryReport, error) {
	var mu sync.Mutex
	return e.learnQueryShared(q, 0, map[string]bool{}, &mu)
}

func (e *Engine) learnQueryShared(q *sqlparser.Query, workerSeed int64, seenStructures map[string]bool, mu *sync.Mutex) (*QueryReport, error) {
	start := time.Now()
	qr := &QueryReport{Query: q.Name}
	opt := optimizer.New(e.DB.Catalog, optimizer.DefaultOptions())
	exec := executor.New(e.DB)
	seed := e.Opts.Seed + workerSeed*7919 + int64(len(q.SQL()))
	gen := storage.NewGenerator(seed)
	rng := rand.New(rand.NewSource(seed))
	planGen := randplan.New(opt, seed)
	ranker := &Ranker{Exec: exec, Runs: e.Opts.Runs, NoiseRNG: rng}

	// Decomposition needs resolved column references (to know which table
	// each predicate belongs to), so work on a resolved clone.
	work := q.Clone()
	if err := sqlparser.Resolve(work, e.DB.Catalog.Schema); err != nil {
		return nil, err
	}
	subs := SubQueries(work, e.Opts.JoinThreshold, e.Opts.MaxSubQueriesPerQuery)
	for _, sub := range subs {
		key := StructureKey(sub)
		mu.Lock()
		if seenStructures[key] {
			mu.Unlock()
			continue
		}
		seenStructures[key] = true
		mu.Unlock()

		subStart := time.Now()
		qr.SubQueries++
		candidates, work, err := e.analyzeSubQuery(sub, opt, planGen, ranker, gen)
		qr.SimulatedWorkMillis += work
		if err != nil {
			// A sub-query that cannot be analyzed (e.g. unresolvable after
			// projection) is skipped, not fatal: the paper's engine simply
			// moves on to the next sub-query.
			continue
		}
		for _, cand := range candidates {
			qr.CandidateRewrites++
			added, err := e.KB.Add(cand.template)
			if err != nil {
				return nil, err
			}
			if added {
				qr.TemplatesAdded++
			}
			qr.BestImprovements = append(qr.BestImprovements, cand.improvement)
		}
		qr.SubQueryWallMillis = append(qr.SubQueryWallMillis, float64(time.Since(subStart).Microseconds())/1000)
	}
	qr.WallMillis = float64(time.Since(start).Microseconds()) / 1000
	return qr, nil
}

// candidate is one rewrite discovered for a sub-query.
type candidate struct {
	template    *kb.Template
	improvement float64
}

// analyzeSubQuery runs the Figure-3 / Section-3.2 loop for one sub-query:
// vary predicates, generate random plans, rank against the optimizer's plan,
// and abstract winning rewrites into templates.
func (e *Engine) analyzeSubQuery(sub *sqlparser.Query, opt *optimizer.Optimizer,
	planGen *randplan.Generator, ranker *Ranker, gen *storage.Generator) ([]candidate, float64, error) {

	variants := PredicateVariants(e.DB, sub, e.Opts.PredicateVariants, gen)
	type observation struct {
		problem     *qgm.Node
		solution    *qgm.Plan
		improvement float64
	}
	groups := map[string][]observation{}
	totalWork := 0.0

	for _, variant := range variants {
		basePlan, _, err := opt.Optimize(variant)
		if err != nil {
			return nil, totalWork, err
		}
		baseline := ranker.Measure(basePlan, variant)
		totalWork += baseline.SimulatedWorkMillis
		if baseline.Err != nil {
			return nil, totalWork, baseline.Err
		}
		alts, err := planGen.RandomPlans(variant, e.Opts.RandomPlans)
		if err != nil {
			return nil, totalWork, err
		}
		if len(alts) == 0 {
			continue
		}
		ranked := ranker.Rank(alts, variant)
		for _, m := range ranked {
			totalWork += m.SimulatedWorkMillis
		}
		best := ranked[0]
		if best.Err != nil || best.MeanMillis <= 0 || baseline.MeanMillis <= 0 {
			continue
		}
		improvement := (baseline.MeanMillis - best.MeanMillis) / baseline.MeanMillis
		if improvement < e.Opts.MinImprovement {
			continue
		}
		problemFrag := problemFragment(basePlan)
		solutionFrag := problemFragment(best.Plan)
		if problemFrag == nil || solutionFrag == nil || problemFrag.CountJoins() == 0 {
			continue
		}
		key := problemFrag.Signature() + "=>" + solutionFrag.Signature()
		groups[key] = append(groups[key], observation{problem: problemFrag, solution: best.Plan, improvement: improvement})
	}

	var out []candidate
	for _, obs := range groups {
		tmpl, err := e.buildTemplate(sub, obs[0].problem, obs[0].solution)
		if err != nil {
			continue
		}
		// Establish property ranges across the variants that shared this
		// problem/solution pair, then widen by the slack factor.
		bounds := map[int]kb.Range{}
		for _, o := range obs {
			ids := map[int]float64{}
			o.problem.Walk(func(n *qgm.Node) { ids[n.ID] = n.EstCardinality })
			for id, card := range ids {
				if r, ok := bounds[id]; ok {
					bounds[id] = r.Widen(card)
				} else {
					bounds[id] = kb.Range{Lo: card, Hi: card}
				}
			}
		}
		for id, r := range bounds {
			bounds[id] = kb.Range{Lo: r.Lo / e.Opts.BoundsSlack, Hi: r.Hi * e.Opts.BoundsSlack}
		}
		tmpl.Bounds = bounds
		mean := 0.0
		for _, o := range obs {
			mean += o.improvement
		}
		mean /= float64(len(obs))
		tmpl.Improvement = mean
		out = append(out, candidate{template: tmpl, improvement: mean})
	}
	return out, totalWork, nil
}

// problemFragment extracts the join-rooted fragment below RETURN (and any
// final SORT/GRPBY operators) of a plan.
func problemFragment(p *qgm.Plan) *qgm.Node {
	if p == nil || p.Root == nil {
		return nil
	}
	n := p.Root
	for n != nil && !n.Op.IsJoin() && !n.Op.IsScan() {
		n = n.Outer
	}
	return n
}

// buildTemplate abstracts a problem/solution pair into a knowledge base
// template: canonical labels replace table names, and the solution becomes an
// OPTGUIDELINES document whose TABIDs are canonical labels.
func (e *Engine) buildTemplate(sub *sqlparser.Query, problem *qgm.Node, solution *qgm.Plan) (*kb.Template, error) {
	labels := transform.CanonicalLabels(problem)
	abstractProblem := transform.Abstract(problem, labels)
	// Re-assign IDs on the abstracted fragment so bounds keyed by operator ID
	// are stable for the template.
	wrapped := qgm.NewPlan(abstractProblem.Clone())
	abstractProblem = wrapped.Root.Outer

	doc, err := guideline.FromPlan(solution)
	if err != nil {
		return nil, err
	}
	for _, g := range doc.Guidelines {
		canonicalizeGuideline(g, labels)
	}
	xmlText, err := doc.XML()
	if err != nil {
		return nil, err
	}
	return &kb.Template{
		Problem:        abstractProblem,
		GuidelineXML:   xmlText,
		SourceQuery:    sub.Name,
		SourceWorkload: e.Opts.Workload,
		Joins:          abstractProblem.CountJoins(),
	}, nil
}

// canonicalizeGuideline replaces concrete table instances with canonical
// labels and strips index names (indexes are context specific; the access
// method is what generalizes).
func canonicalizeGuideline(g *guideline.Element, labels map[string]string) {
	if g == nil {
		return
	}
	if g.TabID != "" {
		if label, ok := labels[strings.ToUpper(g.TabID)]; ok {
			g.TabID = label
		}
	}
	g.Table = ""
	g.Index = ""
	for _, c := range g.Children {
		canonicalizeGuideline(c, labels)
	}
}
