package learning

import (
	"testing"

	"galo/internal/executor"
	"galo/internal/kb"
	"galo/internal/optimizer"
	"galo/internal/workload/tpcds"
)

// TestOnlineLearnerPromotesFromMisestimatedRun closes the loop: executing
// the Figure 8 wide-range query (whose stale histogram misestimate is the
// repo's deterministic problem pattern) and feeding the annotated plan to
// the online learner must trigger analysis and publish templates into a new
// knowledge base epoch — with no batch LearnWorkload anywhere.
func TestOnlineLearnerPromotesFromMisestimatedRun(t *testing.T) {
	db := learnDB(t)
	knowledge := kb.New()
	epoch0 := knowledge.Epoch()

	online := NewOnline(db, func() *kb.KB { return knowledge }, fastOptions(), DefaultOnlineOptions())
	defer online.Close()

	q := tpcds.Fig8WideQuery(db)
	opt := optimizer.New(db.Catalog, optimizer.DefaultOptions())
	plan, _, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := executor.New(db).Execute(plan, q); err != nil {
		t.Fatal(err)
	}
	gap := plan.MaxEstimationGap()
	if gap < 8 {
		t.Fatalf("Fig8 wide query should misestimate heavily, gap = %.1f", gap)
	}
	if !online.Observe(q, plan) {
		t.Fatal("observation above the gap threshold was not enqueued")
	}
	online.Flush()

	stats := online.Stats()
	if stats.Triggered != 1 || stats.Analyzed != 1 {
		t.Errorf("stats = %+v, want 1 triggered / 1 analyzed", stats)
	}
	if stats.TemplatesPromoted == 0 || knowledge.Size() == 0 {
		t.Fatalf("no templates promoted (stats %+v, KB size %d)", stats, knowledge.Size())
	}
	if knowledge.Epoch() == epoch0 {
		t.Error("promotion did not publish a new KB epoch")
	}

	// A well-estimated plan must not trigger analysis.
	q2 := tpcds.Fig3Query()
	plan2, _, err := opt.Optimize(q2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := executor.New(db).Execute(plan2, q2); err != nil {
		t.Fatal(err)
	}
	if plan2.MaxEstimationGap() >= 8 {
		t.Skipf("fixture drift: Fig3 gap %.1f is no longer small", plan2.MaxEstimationGap())
	}
	if online.Observe(q2, plan2) {
		t.Error("well-estimated plan was enqueued")
	}
	if got := online.Stats(); got.Observed != 2 || got.Triggered != 1 {
		t.Errorf("stats after benign observation = %+v", got)
	}
}

// TestOnlineObserveAfterCloseIsNoop pins the Observe/Close race contract.
func TestOnlineObserveAfterCloseIsNoop(t *testing.T) {
	db := learnDB(t)
	knowledge := kb.New()
	online := NewOnline(db, func() *kb.KB { return knowledge }, fastOptions(), DefaultOnlineOptions())
	online.Close()
	online.Close() // idempotent
	q := tpcds.Fig8WideQuery(db)
	opt := optimizer.New(db.Catalog, optimizer.DefaultOptions())
	plan, _, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if online.Observe(q, plan) {
		t.Error("Observe after Close must be a no-op")
	}
}
