// Online incremental learning: the closing of GALO's loop at serving time.
// The batch workflow (LearnWorkload) analyzes a whole workload offline; the
// online learner instead watches executor runs as they happen, picks out the
// queries whose plans showed a large actual-vs-estimated cardinality gap —
// the signal every problem pattern in the paper stems from — and feeds them
// through the same per-query analysis (including the second-measurement
// confirmation rule for structural rewrites), promoting the resulting
// templates into the next knowledge base epoch without any batch relearn.
package learning

import (
	"sync"
	"sync/atomic"

	"galo/internal/kb"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
	"galo/internal/storage"
)

// OnlineOptions configures the online incremental learner.
type OnlineOptions struct {
	// Enabled turns the loop on; when false, Observe is a cheap no-op.
	Enabled bool
	// GapThreshold is the minimum actual-vs-estimated cardinality ratio
	// (qgm.Plan.MaxEstimationGap) an executed plan must show before its
	// query is analyzed; 0 means the default of 8.
	GapThreshold float64
	// QueueSize bounds the analysis backlog; observations arriving at a full
	// queue are dropped (admission control: serving latency must never wait
	// on learning). 0 means the default of 64.
	QueueSize int
}

// DefaultOnlineOptions returns the configuration used by `galo serve
// -online`.
func DefaultOnlineOptions() OnlineOptions {
	return OnlineOptions{Enabled: true, GapThreshold: 8, QueueSize: 64}
}

// OnlineStats counts what the online learner has done; all fields are
// cumulative.
type OnlineStats struct {
	// Observed counts executed plans offered to the learner.
	Observed int64
	// Triggered counts observations whose gap cleared the threshold.
	Triggered int64
	// Dropped counts triggered observations rejected because the queue was
	// full.
	Dropped int64
	// Analyzed counts queries the background worker ran analysis for.
	Analyzed int64
	// TemplatesPromoted counts templates published into the knowledge base.
	TemplatesPromoted int64
}

// Online is the incremental learning service. One background worker drains
// a bounded queue of misestimated queries and analyzes them with a learning
// Engine; Observe never blocks serving traffic.
type Online struct {
	db   *storage.Database
	kbOf func() *kb.KB
	// learnOpts configures the per-query analysis; the engine is rebuilt
	// whenever the resolved knowledge base changes (LoadKB swaps it).
	learnOpts Options
	opts      OnlineOptions

	queue   chan *sqlparser.Query
	pending sync.WaitGroup
	wg      sync.WaitGroup
	// mu guards closed and the queue's lifetime: Observe enqueues under the
	// read lock, Close flips closed and closes the queue under the write
	// lock, so an Observe racing Close can never send on a closed channel.
	mu     sync.RWMutex
	closed bool

	observed  atomic.Int64
	triggered atomic.Int64
	dropped   atomic.Int64
	analyzed  atomic.Int64
	promoted  atomic.Int64
}

// NewOnline starts an online learner over the database. kbOf resolves the
// current knowledge base at analysis time, so templates always land in the
// live KB even across LoadKB replacements. Callers must Close it.
func NewOnline(db *storage.Database, kbOf func() *kb.KB, learnOpts Options, opts OnlineOptions) *Online {
	if opts.GapThreshold <= 1 {
		opts.GapThreshold = 8
	}
	if opts.QueueSize <= 0 {
		opts.QueueSize = 64
	}
	o := &Online{
		db:        db,
		kbOf:      kbOf,
		learnOpts: learnOpts,
		opts:      opts,
		queue:     make(chan *sqlparser.Query, opts.QueueSize),
	}
	o.wg.Add(1)
	go o.worker()
	return o
}

// Observe offers one executed plan to the learner. It reports whether the
// query was enqueued for analysis; it never blocks (a full queue drops the
// observation and counts it).
func (o *Online) Observe(q *sqlparser.Query, plan *qgm.Plan) bool {
	if o == nil || q == nil || plan == nil {
		return false
	}
	o.mu.RLock()
	defer o.mu.RUnlock()
	if o.closed {
		return false
	}
	o.observed.Add(1)
	if plan.MaxEstimationGap() < o.opts.GapThreshold {
		return false
	}
	o.triggered.Add(1)
	o.pending.Add(1)
	select {
	case o.queue <- q.Clone():
		return true
	default:
		o.pending.Done()
		o.dropped.Add(1)
		return false
	}
}

// worker drains the queue: one query at a time is decomposed and analyzed
// exactly like a batch learning run would (structure claims dedupe repeat
// offenders; structural rewrites must confirm their win in a second
// measurement round), and any winning templates publish a new knowledge
// base epoch.
func (o *Online) worker() {
	defer o.wg.Done()
	var engine *Engine
	for q := range o.queue {
		knowledge := o.kbOf()
		if engine == nil || engine.KB != knowledge {
			// The knowledge base was replaced (LoadKB): later analyses must
			// promote into the live KB. Structure claims reset with the
			// engine, which at worst re-analyzes a structure the old KB had
			// seen — the KB merge de-duplicates the outcome.
			engine = New(o.db, knowledge, o.learnOpts)
		}
		qr, err := engine.LearnQuery(q)
		o.analyzed.Add(1)
		if err == nil && qr != nil {
			o.promoted.Add(int64(qr.TemplatesAdded))
		}
		o.pending.Done()
	}
}

// Flush blocks until every enqueued observation has been analyzed — for
// tests and benchmarks that need the next epoch published deterministically.
// It holds the write lock while draining, so Observe calls arriving during
// a Flush wait for it rather than racing the WaitGroup from zero (which is
// documented WaitGroup misuse).
func (o *Online) Flush() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.pending.Wait()
}

// Stats returns a snapshot of the learner's counters.
func (o *Online) Stats() OnlineStats {
	return OnlineStats{
		Observed:          o.observed.Load(),
		Triggered:         o.triggered.Load(),
		Dropped:           o.dropped.Load(),
		Analyzed:          o.analyzed.Load(),
		TemplatesPromoted: o.promoted.Load(),
	}
}

// Close stops the worker after draining the queue. Observe calls arriving
// after Close are no-ops.
func (o *Online) Close() {
	if o == nil {
		return
	}
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return
	}
	o.closed = true
	close(o.queue)
	o.mu.Unlock()
	o.wg.Wait()
}
