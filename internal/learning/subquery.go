package learning

import (
	"fmt"
	"sort"
	"strings"

	"galo/internal/catalog"
	"galo/internal/sqlparser"
	"galo/internal/storage"
)

// SubQueries decomposes a large SQL query into the connected sub-queries the
// learning engine analyzes (Figure 3 of the paper): every connected subset of
// the query's table references with at least one join and at most
// maxJoins+1 tables, projecting the join and local predicates applicable to
// the subset. Enumeration is capped at maxSubQueries to keep very wide
// queries tractable; the paper bounds the same explosion with its
// join-number threshold.
//
// The query's column references must be resolved (sqlparser.Resolve) so that
// every predicate knows which table reference it belongs to.
func SubQueries(q *sqlparser.Query, maxJoins, maxSubQueries int) []*sqlparser.Query {
	if maxJoins < 1 {
		maxJoins = 1
	}
	if maxSubQueries <= 0 {
		maxSubQueries = 64
	}
	n := len(q.From)
	if n < 2 {
		return nil
	}
	maxTables := maxJoins + 1

	// Adjacency over FROM entries via join predicates.
	adj := make([][]int, n)
	nameToIdx := map[string]int{}
	for i, tr := range q.From {
		nameToIdx[strings.ToUpper(tr.Name())] = i
	}
	for _, p := range q.JoinPredicates() {
		li, lok := nameToIdx[strings.ToUpper(p.Left.Table)]
		ri, rok := nameToIdx[strings.ToUpper(p.Right.Table)]
		if !lok || !rok || li == ri {
			continue
		}
		adj[li] = append(adj[li], ri)
		adj[ri] = append(adj[ri], li)
	}

	seen := map[string]bool{}
	var out []*sqlparser.Query
	var grow func(subset []int)
	grow = func(subset []int) {
		if len(out) >= maxSubQueries {
			return
		}
		if len(subset) >= 2 {
			key := subsetKey(subset)
			if !seen[key] {
				seen[key] = true
				if sq := projectSubQuery(q, subset); sq != nil && sq.NumJoins() >= 1 {
					out = append(out, sq)
				}
			}
		}
		if len(subset) >= maxTables {
			return
		}
		// Extend with any neighbour of the subset with a larger index than the
		// smallest element to limit duplicate enumeration orders.
		inSubset := map[int]bool{}
		for _, i := range subset {
			inSubset[i] = true
		}
		candidates := map[int]bool{}
		for _, i := range subset {
			for _, nb := range adj[i] {
				if !inSubset[nb] {
					candidates[nb] = true
				}
			}
		}
		cands := make([]int, 0, len(candidates))
		for c := range candidates {
			cands = append(cands, c)
		}
		sort.Ints(cands)
		for _, c := range cands {
			if len(out) >= maxSubQueries {
				return
			}
			grow(append(append([]int{}, subset...), c))
		}
	}
	for i := 0; i < n && len(out) < maxSubQueries; i++ {
		grow([]int{i})
	}
	return out
}

func subsetKey(subset []int) string {
	cp := append([]int(nil), subset...)
	sort.Ints(cp)
	parts := make([]string, len(cp))
	for i, v := range cp {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return strings.Join(parts, ",")
}

// projectSubQuery builds the sub-query over the given FROM indices: it keeps
// the referenced tables, the join predicates fully inside the subset, the
// local predicates on subset tables, and the select-list columns that belong
// to subset tables (falling back to the join columns when none do).
func projectSubQuery(q *sqlparser.Query, subset []int) *sqlparser.Query {
	inSubset := map[string]bool{}
	sub := &sqlparser.Query{Name: q.Name}
	for _, i := range subset {
		sub.From = append(sub.From, q.From[i])
		inSubset[strings.ToUpper(q.From[i].Name())] = true
	}
	for _, p := range q.Where {
		switch {
		case p.Kind == sqlparser.PredJoin:
			if inSubset[strings.ToUpper(p.Left.Table)] && inSubset[strings.ToUpper(p.Right.Table)] {
				sub.Where = append(sub.Where, p)
			}
		default:
			if inSubset[strings.ToUpper(p.Left.Table)] {
				sub.Where = append(sub.Where, p)
			}
		}
	}
	for _, c := range q.Select {
		if inSubset[strings.ToUpper(c.Table)] {
			sub.Select = append(sub.Select, c)
		}
	}
	if len(sub.Select) == 0 {
		for _, p := range sub.Where {
			if p.Kind == sqlparser.PredJoin {
				sub.Select = append(sub.Select, p.Left)
				break
			}
		}
	}
	if len(sub.Select) == 0 {
		sub.Star = true
	}
	return sub
}

// StructureKey returns a key identifying the sub-query's structure
// independent of predicate values, used to merge sub-queries with the same
// structure across workload queries ("the sub-queries with the same structure
// over different queries can be merged and evaluated once").
func StructureKey(q *sqlparser.Query) string {
	var parts []string
	tables := make([]string, len(q.From))
	for i, tr := range q.From {
		tables[i] = strings.ToUpper(tr.Table)
	}
	sort.Strings(tables)
	parts = append(parts, "T:"+strings.Join(tables, ","))
	var preds []string
	for _, p := range q.Where {
		if p.Kind == sqlparser.PredJoin {
			cols := []string{p.Left.Column, p.Right.Column}
			sort.Strings(cols)
			preds = append(preds, "J:"+strings.Join(cols, "="))
		} else {
			preds = append(preds, fmt.Sprintf("L:%s:%d", p.Left.Column, p.Kind))
		}
	}
	sort.Strings(preds)
	parts = append(parts, preds...)
	return strings.Join(parts, "|")
}

// PredicateVariants generates variations of a sub-query by replacing the
// values of its equality predicates with other values sampled from the
// database, producing different reduction factors and hence result
// cardinalities (Section 3.2: "the values of the query's predicates are
// varied"). The original query is always the first variant.
func PredicateVariants(db *storage.Database, q *sqlparser.Query, perPredicate int, gen *storage.Generator) []*sqlparser.Query {
	variants := []*sqlparser.Query{q}
	if perPredicate <= 0 {
		return variants
	}
	for pi, p := range q.Where {
		table := baseTableOf(q, p.Left.Table)
		var samples []catalog.Value
		between := p.Kind == sqlparser.PredBetween && !p.Not
		switch {
		case p.Kind == sqlparser.PredCompare && p.Op == "=":
			samples = sampleColumnValues(db, table, p.Left.Column, perPredicate, gen)
		case p.Kind == sqlparser.PredCompare:
			switch p.Op {
			case ">", ">=", "<", "<=":
				// Range predicates are varied across the column's value
				// quantiles, so both wide ranges (the Figure 8 over-estimation
				// hazard) and narrow ones contribute observations — that
				// spread is what establishes a template's cardinality bounds.
				samples = sampleColumnQuantiles(db, table, p.Left.Column, perPredicate)
			}
		case between:
			// BETWEEN ranges vary their lower bound across quantiles: the
			// same problem shape is observed at several range widths, so the
			// learned template's cardinality bounds cover a band of ranges
			// rather than one point.
			samples = sampleColumnQuantiles(db, table, p.Left.Column, perPredicate)
		}
		for _, v := range samples {
			if between {
				// Skip samples that would not change the range (equal to the
				// current lower bound, or above the upper bound).
				if catalog.Equal(v, p.Lo) || catalog.Compare(v, p.Hi) > 0 {
					continue
				}
			} else if catalog.Equal(v, p.Value) {
				continue
			}
			variant := q.Clone()
			if between {
				variant.Where[pi].Lo = v
			} else {
				variant.Where[pi].Value = v
			}
			variants = append(variants, variant)
		}
	}
	return variants
}

// sampleColumnQuantiles returns n values spread across the column's sorted
// distinct values (excluding the extremes when possible), for varying range
// predicates.
func sampleColumnQuantiles(db *storage.Database, table, column string, n int) []catalog.Value {
	t := db.Table(table)
	if t == nil || n <= 0 {
		return nil
	}
	ci := t.Def.ColumnIndex(column)
	if ci < 0 {
		return nil
	}
	seen := map[string]catalog.Value{}
	for _, row := range t.Rows {
		v := row[ci]
		if v.IsNull() {
			continue
		}
		seen[v.Key()] = v
	}
	if len(seen) == 0 {
		return nil
	}
	values := make([]catalog.Value, 0, len(seen))
	for _, v := range seen {
		values = append(values, v)
	}
	sort.Slice(values, func(i, j int) bool { return catalog.Compare(values[i], values[j]) < 0 })
	out := make([]catalog.Value, 0, n)
	for i := 1; i <= n; i++ {
		pos := len(values) * i / (n + 1)
		if pos >= len(values) {
			pos = len(values) - 1
		}
		out = append(out, values[pos])
	}
	return out
}

func baseTableOf(q *sqlparser.Query, refName string) string {
	if tr := q.TableByName(refName); tr != nil {
		return tr.Table
	}
	return refName
}

// sampleColumnValues picks distinct values of a column with varying
// frequencies: the most frequent value, the least frequent, and random picks
// in between, following the paper's property-range sampling.
func sampleColumnValues(db *storage.Database, table, column string, n int, gen *storage.Generator) []catalog.Value {
	t := db.Table(table)
	if t == nil || n <= 0 {
		return nil
	}
	ci := t.Def.ColumnIndex(column)
	if ci < 0 {
		return nil
	}
	counts := map[string]int{}
	byKey := map[string]catalog.Value{}
	for _, row := range t.Rows {
		v := row[ci]
		if v.IsNull() {
			continue
		}
		counts[v.Key()]++
		byKey[v.Key()] = v
	}
	if len(counts) == 0 {
		return nil
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	var out []catalog.Value
	out = append(out, byKey[keys[0]]) // most frequent
	if n > 1 && len(keys) > 1 {
		out = append(out, byKey[keys[len(keys)-1]]) // least frequent
	}
	for len(out) < n && len(keys) > 2 {
		out = append(out, byKey[keys[1+gen.Intn(len(keys)-2)]])
	}
	if len(out) > n {
		out = out[:n]
	}
	return out
}
