package transform

import (
	"strings"
	"testing"

	"galo/internal/qgm"
	"galo/internal/rdf"
	"galo/internal/sparql"
)

// figure4aFragment builds the problem fragment of the paper's Figure 4a.
func figure4aFragment() *qgm.Node {
	q1 := &qgm.Node{Op: qgm.OpFETCH, Table: "CUSTOMER_ADDRESS", TableInstance: "Q1", Index: "CA_IDX", EstCardinality: 7.5}
	q2 := &qgm.Node{Op: qgm.OpFETCH, Table: "CATALOG_SALES", TableInstance: "Q2", Index: "CS_IDX", EstCardinality: 0.089}
	q3 := &qgm.Node{Op: qgm.OpFETCH, Table: "DATE_DIM", TableInstance: "Q3", Index: "D_IDX", EstCardinality: 0.99}
	q4 := &qgm.Node{Op: qgm.OpFETCH, Table: "CATALOG_SALES", TableInstance: "Q4", Index: "CS_IDX2", EstCardinality: 19.7}
	j4 := &qgm.Node{Op: qgm.OpNLJOIN, Outer: q4, Inner: q3, EstCardinality: 19.6}
	j3 := &qgm.Node{Op: qgm.OpNLJOIN, Outer: j4, Inner: q2, EstCardinality: 1.75}
	j2 := &qgm.Node{Op: qgm.OpNLJOIN, Outer: j3, Inner: q1, EstCardinality: 13.14}
	plan := qgm.NewPlan(j2)
	return plan.Root.Outer
}

func TestPlanToRDFContainsPaperTriples(t *testing.T) {
	frag := figure4aFragment()
	plan := qgm.NewPlan(frag.Clone())
	store := PlanToRDF(plan)
	if store.Len() == 0 {
		t.Fatal("empty RDF graph")
	}
	// Every operator has a type triple.
	popType := Prop(PropPopType)
	if got := len(store.Match(nil, &popType, nil)); got != plan.NumOps() {
		t.Errorf("hasPopType triples = %d, want %d", got, plan.NumOps())
	}
	text := store.NTriples()
	for _, want := range []string{PropEstCardinality, PropOuterInput, PropOutputStream, "CATALOG_SALES"} {
		if !strings.Contains(text, want) {
			t.Errorf("RDF graph missing %q", want)
		}
	}
	if PlanToRDF(nil).Len() != 0 {
		t.Errorf("nil plan should produce an empty graph")
	}
}

func TestCanonicalLabelsAndAbstract(t *testing.T) {
	frag := figure4aFragment()
	labels := CanonicalLabels(frag)
	if len(labels) != 4 {
		t.Fatalf("labels = %v", labels)
	}
	if labels["Q1"] != "TABLE_1" || labels["Q4"] != "TABLE_4" {
		t.Errorf("labels not assigned in sorted instance order: %v", labels)
	}
	abstract := Abstract(frag, labels)
	abstract.Walk(func(n *qgm.Node) {
		if n.Op.IsScan() {
			if !strings.HasPrefix(n.Table, "TABLE_") || !strings.HasPrefix(n.TableInstance, "TABLE_") {
				t.Errorf("scan not abstracted: %+v", n)
			}
			if strings.Contains(n.Index, "CS_") || strings.Contains(n.Index, "CA_") {
				t.Errorf("index name leaked into abstraction: %q", n.Index)
			}
		}
		if len(n.Predicates) != 0 {
			t.Errorf("predicates should be cleared")
		}
	})
	// The original fragment is untouched.
	if frag.Scans()[0].Table == "TABLE_1" {
		t.Errorf("Abstract mutated its input")
	}
	// Abstraction is shape-preserving.
	if abstract.ShapeSignature() != frag.ShapeSignature() {
		t.Errorf("abstraction changed the shape: %s vs %s", abstract.ShapeSignature(), frag.ShapeSignature())
	}
}

func TestFragmentMatchQueryParsesAndDescribesFragment(t *testing.T) {
	frag := figure4aFragment()
	text, info, err := FragmentMatchQuery(frag)
	if err != nil {
		t.Fatalf("FragmentMatchQuery: %v", err)
	}
	q, err := sparql.Parse(text)
	if err != nil {
		t.Fatalf("generated query does not parse: %v\n%s", err, text)
	}
	// One hasPopType pattern per operator.
	popTypeCount := 0
	for _, p := range q.Patterns {
		if strings.HasSuffix(p.Path[0].Pred.Value, PropPopType) {
			popTypeCount++
		}
	}
	if popTypeCount != frag.CountOps() {
		t.Errorf("hasPopType patterns = %d, want %d", popTypeCount, frag.CountOps())
	}
	// Bounds filters: two per operator.
	if len(q.Filters) < frag.CountOps()*2 {
		t.Errorf("filters = %d, want at least %d", len(q.Filters), frag.CountOps()*2)
	}
	// Template/guideline/improvement are selected.
	joined := strings.Join(q.Select, " ")
	for _, v := range []string{info.TemplateVar, info.GuidelineVar, info.ImprovementVar} {
		if !strings.Contains(joined, v) {
			t.Errorf("SELECT misses %q: %v", v, q.Select)
		}
	}
	// Every scan instance has a canonical-table variable.
	if len(info.CanonicalVarByInstance) != 4 {
		t.Errorf("CanonicalVarByInstance = %v", info.CanonicalVarByInstance)
	}
	// Table names never appear in the generated query (canonical abstraction).
	if strings.Contains(text, "CATALOG_SALES") || strings.Contains(text, "DATE_DIM") {
		t.Errorf("concrete table names leaked into the matching query:\n%s", text)
	}
	if _, _, err := FragmentMatchQuery(nil); err == nil {
		t.Errorf("nil fragment should fail")
	}
}

func TestVarForNaming(t *testing.T) {
	scan := &qgm.Node{Op: qgm.OpIXSCAN, TableInstance: "Q3", ID: 9}
	if VarFor(scan) != "pop_Q3" {
		t.Errorf("VarFor(scan) = %q", VarFor(scan))
	}
	join := &qgm.Node{Op: qgm.OpHSJOIN, ID: 2}
	if VarFor(join) != "pop_2" {
		t.Errorf("VarFor(join) = %q", VarFor(join))
	}
}

func TestMatchQueryAgainstHandBuiltTemplateGraph(t *testing.T) {
	// Store a minimal single-join template graph and check the generated
	// query for a structurally identical fragment matches it, while a
	// fragment with a different join method does not.
	store := rdf.NewStore()
	tmpl := TemplateIRI("t1")
	add := func(s rdf.Term, p string, o rdf.Term) { store.Add(rdf.Triple{S: s, P: Prop(p), O: o}) }
	join := KBPopIRI("t1", 2)
	outer := KBPopIRI("t1", 3)
	inner := KBPopIRI("t1", 4)
	add(join, PropPopType, rdf.NewLiteral(string(qgm.OpMSJOIN)))
	add(join, PropLowerCardinality, rdf.NewNumericLiteral(1))
	add(join, PropHigherCardinality, rdf.NewNumericLiteral(1e9))
	add(join, PropInTemplate, tmpl)
	add(join, PropOuterInput, outer)
	add(join, PropInnerInput, inner)
	for i, popTerm := range []rdf.Term{outer, inner} {
		add(popTerm, PropPopType, rdf.NewLiteral(string(qgm.OpIXSCAN)))
		add(popTerm, PropLowerCardinality, rdf.NewNumericLiteral(1))
		add(popTerm, PropHigherCardinality, rdf.NewNumericLiteral(1e9))
		add(popTerm, PropCanonicalTable, rdf.NewLiteral([]string{"TABLE_1", "TABLE_2"}[i]))
		add(popTerm, PropInTemplate, tmpl)
	}
	add(tmpl, PropGuideline, rdf.NewLiteral("<OPTGUIDELINES/>"))
	add(tmpl, PropImprovement, rdf.NewNumericLiteral(0.5))

	frag := &qgm.Node{Op: qgm.OpMSJOIN, EstCardinality: 100,
		Outer: &qgm.Node{Op: qgm.OpIXSCAN, Table: "OPEN_IN", TableInstance: "Q1", Index: "X", EstCardinality: 10},
		Inner: &qgm.Node{Op: qgm.OpIXSCAN, Table: "ENTRY_IDX", TableInstance: "Q2", Index: "Y", EstCardinality: 10},
	}
	qgm.NewPlan(frag.Clone()) // not used, just keeps IDs assigned on a copy
	frag.ID, frag.Outer.ID, frag.Inner.ID = 2, 3, 4

	text, info, err := FragmentMatchQuery(frag)
	if err != nil {
		t.Fatal(err)
	}
	sols, err := sparql.Execute(sparql.MustParse(text), store)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(sols) == 0 {
		t.Fatalf("structurally identical fragment did not match\n%s", text)
	}
	if got := sols[0][info.TemplateVar].Value; !strings.HasSuffix(got, "/t1") {
		t.Errorf("template binding = %q", got)
	}
	// Canonical table labels come back for TABID rebinding.
	if sols[0][info.CanonicalVarByInstance["Q1"]].Value != "TABLE_1" {
		t.Errorf("canonical binding = %v", sols[0])
	}

	// A hash-join fragment must not match the merge-join template.
	frag.Op = qgm.OpHSJOIN
	text2, _, _ := FragmentMatchQuery(frag)
	sols2, err := sparql.Execute(sparql.MustParse(text2), store)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols2) != 0 {
		t.Errorf("different join method should not match")
	}
	// A fragment whose cardinality is outside the bounds must not match.
	frag.Op = qgm.OpMSJOIN
	frag.EstCardinality = 1e12
	text3, _, _ := FragmentMatchQuery(frag)
	sols3, _ := sparql.Execute(sparql.MustParse(text3), store)
	if len(sols3) != 0 {
		t.Errorf("out-of-bounds cardinality should not match")
	}
}
