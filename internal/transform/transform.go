// Package transform implements GALO's transformation engine: the component
// that maps query execution plans (QGMs) into RDF graphs, and plan fragments
// into the SPARQL queries used to probe the knowledge base (Figure 6 of the
// paper). It is the bridge between the relational world (internal/qgm) and
// the semantic-web world (internal/rdf, internal/sparql) the knowledge base
// lives in.
package transform

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"galo/internal/qgm"
	"galo/internal/rdf"
)

// Namespaces used by GALO's RDF encoding, following the IRIs shown in the
// paper.
const (
	PopBase    = "http://galo/qep/pop/"
	PropBase   = "http://galo/qep/property/"
	KBPopBase  = "http://galo/kb/pop/"
	KBTmplBase = "http://galo/kb/template/"
)

// Property names.
const (
	PropPopType           = "hasPopType"
	PropEstCardinality    = "hasEstimateCardinality"
	PropActCardinality    = "hasActualCardinality"
	PropLowerCardinality  = "hasLowerCardinality"
	PropHigherCardinality = "hasHigherCardinality"
	PropRowSize           = "hasRowSize"
	PropPages             = "hasPages"
	PropTableName         = "hasTableName"
	PropTableInstance     = "hasTableInstance"
	PropCanonicalTable    = "hasCanonicalTable"
	PropIndexName         = "hasIndexName"
	PropBloomFilter       = "hasBloomFilter"
	PropOutputStream      = "hasOutputStream"
	PropOuterInput        = "hasOuterInputStream"
	PropInnerInput        = "hasInnerInputStream"
	PropInTemplate        = "inTemplate"
	PropGuideline         = "hasGuideline"
	PropImprovement       = "hasImprovement"
	PropSourceQuery       = "hasSourceQuery"
	PropSourceWorkload    = "hasSourceWorkload"
	PropStructural        = "hasStructuralRewrite"
	PropJoinCount         = "hasJoinCount"
	PropSignature         = "hasSignature"
)

// Prop returns the IRI term of a property.
func Prop(name string) rdf.Term { return rdf.NewIRI(PropBase + name) }

// PopIRI returns the resource IRI of a plan operator in a concrete plan
// graph.
func PopIRI(id int) rdf.Term { return rdf.NewIRI(PopBase + strconv.Itoa(id)) }

// KBPopIRI returns the resource IRI of an operator belonging to a knowledge
// base template.
func KBPopIRI(templateID string, opID int) rdf.Term {
	return rdf.NewIRI(KBPopBase + templateID + "/" + strconv.Itoa(opID))
}

// TemplateIRI returns the resource IRI of a knowledge base template.
func TemplateIRI(id string) rdf.Term { return rdf.NewIRI(KBTmplBase + id) }

// PlanToRDF translates a concrete plan into an RDF graph, one resource per
// LOLEPOP with its properties and input-stream relationships. This is the
// Section 3.1 mapping and is used for plan browsing, debugging and tests; the
// knowledge base uses the template encoding below instead.
func PlanToRDF(p *qgm.Plan) *rdf.Store {
	store := rdf.NewStore()
	if p == nil || p.Root == nil {
		return store
	}
	p.Root.Walk(func(n *qgm.Node) {
		subj := PopIRI(n.ID)
		store.Add(rdf.Triple{S: subj, P: Prop(PropPopType), O: rdf.NewLiteral(string(n.Op))})
		store.Add(rdf.Triple{S: subj, P: Prop(PropEstCardinality), O: rdf.NewNumericLiteral(round2(n.EstCardinality))})
		if n.ActCardinality > 0 {
			store.Add(rdf.Triple{S: subj, P: Prop(PropActCardinality), O: rdf.NewNumericLiteral(round2(n.ActCardinality))})
		}
		if n.RowSize > 0 {
			store.Add(rdf.Triple{S: subj, P: Prop(PropRowSize), O: rdf.NewNumericLiteral(float64(n.RowSize))})
		}
		if n.Pages > 0 {
			store.Add(rdf.Triple{S: subj, P: Prop(PropPages), O: rdf.NewNumericLiteral(round2(n.Pages))})
		}
		if n.Table != "" {
			store.Add(rdf.Triple{S: subj, P: Prop(PropTableName), O: rdf.NewLiteral(n.Table)})
			store.Add(rdf.Triple{S: subj, P: Prop(PropTableInstance), O: rdf.NewLiteral(n.TableInstance)})
		}
		if n.Index != "" {
			store.Add(rdf.Triple{S: subj, P: Prop(PropIndexName), O: rdf.NewLiteral(n.Index)})
		}
		if n.BloomFilter {
			store.Add(rdf.Triple{S: subj, P: Prop(PropBloomFilter), O: rdf.NewLiteral("true")})
		}
		if n.Outer != nil {
			store.Add(rdf.Triple{S: subj, P: Prop(PropOuterInput), O: PopIRI(n.Outer.ID)})
			store.Add(rdf.Triple{S: PopIRI(n.Outer.ID), P: Prop(PropOutputStream), O: subj})
		}
		if n.Inner != nil {
			store.Add(rdf.Triple{S: subj, P: Prop(PropInnerInput), O: PopIRI(n.Inner.ID)})
			store.Add(rdf.Triple{S: PopIRI(n.Inner.ID), P: Prop(PropOutputStream), O: subj})
		}
	})
	return store
}

func round2(f float64) float64 { return float64(int64(f*100)) / 100 }

// VarFor returns the SPARQL variable name used for a plan node: result
// handlers are named after the table instance for base-table accesses and
// after the operator ID otherwise, as in the paper's Figure 6.
func VarFor(n *qgm.Node) string {
	if n.Op.IsScan() && n.TableInstance != "" {
		return "pop_" + n.TableInstance
	}
	return "pop_" + strconv.Itoa(n.ID)
}

// MatchQueryInfo describes how to interpret the solutions of a generated
// matching query.
type MatchQueryInfo struct {
	// TemplateVar, GuidelineVar and ImprovementVar are the variables bound to
	// the matching template's resource, its guideline XML and its recorded
	// improvement.
	TemplateVar    string
	GuidelineVar   string
	ImprovementVar string
	// CanonicalVarByInstance maps each scan's table instance in the incoming
	// fragment to the variable that binds the template's canonical table
	// label for it (used to rewrite guideline TABIDs).
	CanonicalVarByInstance map[string]string
	// NodeVars maps fragment operator IDs to their variable names.
	NodeVars map[int]string
}

// ProbeSolutionLimit bounds how many matching templates one knowledge base
// probe may return: the generated SPARQL carries a LIMIT and the evaluator
// stops enumerating solutions at the bound, keeping cold probes flat even
// when a large knowledge base holds many templates matching the same
// fragment shape. The cut is by enumeration order, not by improvement — the
// matcher picks the best-improvement template *among the first k matches*,
// trading the global optimum (every match already cleared the learning
// improvement threshold, so any of them helps) for bounded probe time.
const ProbeSolutionLimit = 8

// FragmentMatchQuery generates the SPARQL query that probes the knowledge
// base for problem-pattern templates matching the given plan fragment. The
// query constrains operator types, the outer/inner input-stream structure,
// and — through FILTERs — that the fragment's estimated cardinalities fall
// within each template operator's lower/upper bounds. Table and column names
// are deliberately not constrained: that is the canonical-symbol abstraction
// that lets patterns learned on one workload match another. Results are
// capped at ProbeSolutionLimit (see above).
func FragmentMatchQuery(fragment *qgm.Node) (string, *MatchQueryInfo, error) {
	if fragment == nil {
		return "", nil, fmt.Errorf("transform: nil fragment")
	}
	info := &MatchQueryInfo{
		TemplateVar:            "template",
		GuidelineVar:           "guideline",
		ImprovementVar:         "improvement",
		CanonicalVarByInstance: map[string]string{},
		NodeVars:               map[int]string{},
	}
	var nodes []*qgm.Node
	fragment.Walk(func(n *qgm.Node) { nodes = append(nodes, n) })
	for _, n := range nodes {
		info.NodeVars[n.ID] = VarFor(n)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "PREFIX predURI: <%s>\n", PropBase)
	selectVars := []string{"?" + info.TemplateVar, "?" + info.GuidelineVar, "?" + info.ImprovementVar}
	ih := 0
	var where strings.Builder

	for _, n := range nodes {
		v := "?" + info.NodeVars[n.ID]
		fmt.Fprintf(&where, " %s predURI:%s %q .\n", v, PropPopType, string(n.Op))
		// Cardinality bounds.
		ih++
		loVar := fmt.Sprintf("?ih%d", ih)
		fmt.Fprintf(&where, " %s predURI:%s %s .\n", v, PropLowerCardinality, loVar)
		fmt.Fprintf(&where, " FILTER ( %s <= %s ) .\n", loVar, formatNum(n.EstCardinality))
		ih++
		hiVar := fmt.Sprintf("?ih%d", ih)
		fmt.Fprintf(&where, " %s predURI:%s %s .\n", v, PropHigherCardinality, hiVar)
		fmt.Fprintf(&where, " FILTER ( %s >= %s ) .\n", hiVar, formatNum(n.EstCardinality))
		if n.Op.IsScan() && n.TableInstance != "" {
			canonVar := "ct_" + n.TableInstance
			info.CanonicalVarByInstance[n.TableInstance] = canonVar
			selectVars = append(selectVars, "?"+canonVar)
			fmt.Fprintf(&where, " %s predURI:%s ?%s .\n", v, PropCanonicalTable, canonVar)
		}
		// Structure: outer / inner input streams.
		if n.Outer != nil {
			fmt.Fprintf(&where, " %s predURI:%s ?%s .\n", v, PropOuterInput, info.NodeVars[n.Outer.ID])
		}
		if n.Inner != nil {
			fmt.Fprintf(&where, " %s predURI:%s ?%s .\n", v, PropInnerInput, info.NodeVars[n.Inner.ID])
		}
	}
	// Template linkage from the fragment root.
	rootVar := "?" + info.NodeVars[fragment.ID]
	fmt.Fprintf(&where, " %s predURI:%s ?%s .\n", rootVar, PropInTemplate, info.TemplateVar)
	fmt.Fprintf(&where, " ?%s predURI:%s ?%s .\n", info.TemplateVar, PropGuideline, info.GuidelineVar)
	fmt.Fprintf(&where, " ?%s predURI:%s ?%s .\n", info.TemplateVar, PropImprovement, info.ImprovementVar)
	// Distinctness of matched resources.
	varNames := make([]string, 0, len(nodes))
	for _, n := range nodes {
		varNames = append(varNames, info.NodeVars[n.ID])
	}
	sort.Strings(varNames)
	for i := 0; i < len(varNames); i++ {
		for j := i + 1; j < len(varNames); j++ {
			fmt.Fprintf(&where, " FILTER (STR(?%s) != STR(?%s)) .\n", varNames[i], varNames[j])
		}
	}

	fmt.Fprintf(&b, "SELECT %s\nWHERE {\n%s}\nLIMIT %d\n", strings.Join(selectVars, " "), where.String(), ProbeSolutionLimit)
	return b.String(), info, nil
}

func formatNum(f float64) string {
	return strconv.FormatFloat(f, 'f', 2, 64)
}

// CanonicalLabels assigns canonical table labels (TABLE_1, TABLE_2, ...) to
// the table instances of a plan fragment, in sorted instance order. This is
// the abstraction step of Section 3.2: templates never store concrete table
// names, so that patterns learned over one workload apply to others.
func CanonicalLabels(fragment *qgm.Node) map[string]string {
	instances := make([]string, 0)
	seen := map[string]bool{}
	fragment.Walk(func(n *qgm.Node) {
		if n.TableInstance != "" && !seen[n.TableInstance] {
			seen[n.TableInstance] = true
			instances = append(instances, n.TableInstance)
		}
	})
	sort.Strings(instances)
	out := make(map[string]string, len(instances))
	for i, inst := range instances {
		out[inst] = fmt.Sprintf("TABLE_%d", i+1)
	}
	return out
}

// Abstract clones the fragment and replaces table names, instances and index
// names with canonical labels according to the given mapping, clearing
// per-query predicate text. The result is what gets stored in a knowledge
// base template.
func Abstract(fragment *qgm.Node, labels map[string]string) *qgm.Node {
	clone := fragment.Clone()
	clone.Walk(func(n *qgm.Node) {
		if n.TableInstance != "" {
			label := labels[n.TableInstance]
			if label == "" {
				label = "TABLE_X"
			}
			if n.Index != "" {
				n.Index = "INDEX_" + strings.TrimPrefix(label, "TABLE_")
			}
			n.Table = label
			n.TableInstance = label
		}
		n.Predicates = nil
		n.JoinCols = nil
	})
	return clone
}
