// Package galo is the public API of this repository's reproduction of
// "Guided Automated Learning for query workload re-Optimization" (GALO,
// PVLDB 2019).
//
// GALO adds a third tier of optimization — plan rewrite — on top of a
// two-tier (query-rewrite + cost-based) optimizer. Offline, the learning
// engine decomposes workload queries into sub-queries, benchmarks competing
// plans from a random plan generator against the optimizer's choices, and
// stores winning rewrites as abstracted problem-pattern templates in an
// RDF/SPARQL knowledge base. Online, the matching engine probes the knowledge
// base with SPARQL queries generated from an incoming plan's fragments and
// re-optimizes the query with the matched guideline documents.
//
// A minimal end-to-end use looks like:
//
//	db, _ := galo.GenerateTPCDS(galo.TPCDSOptions{Seed: 1, Scale: 0.2, Hazards: true})
//	sys := galo.NewSystem(db, galo.DefaultConfig())
//	sys.Learn(galo.TPCDSQueries())                 // offline
//	res, _ := sys.Reoptimize(galo.MustParseSQL(`SELECT ...`)) // online
//
// Everything runs on the self-contained minidb substrate in internal/ (SQL
// parser, catalog, storage, cost-based optimizer, executor), which stands in
// for IBM DB2; see DESIGN.md for the full substitution table.
package galo

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"galo/internal/core"
	"galo/internal/executor"
	"galo/internal/experiments"
	"galo/internal/fleet"
	"galo/internal/guideline"
	"galo/internal/kb"
	"galo/internal/learning"
	"galo/internal/matching"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
	"galo/internal/storage"
	"galo/internal/wal"
	"galo/internal/workload/client"
	"galo/internal/workload/scenario"
	"galo/internal/workload/tpcds"
	"galo/internal/workload/trace"
)

// System is a GALO deployment over one database instance: a knowledge base
// plus the offline learning and online re-optimization workflows.
type System = core.System

// Config configures a System.
type Config = core.Config

// QueryOutcome is the before/after record of one re-optimized workload query.
type QueryOutcome = core.QueryOutcome

// WorkloadSummary aggregates a re-optimized workload run.
type WorkloadSummary = core.WorkloadSummary

// LearningOptions configures the offline learning engine.
type LearningOptions = learning.Options

// LearningReport summarizes an offline learning run.
type LearningReport = learning.Report

// OnlineOptions configures the online incremental learner that promotes
// templates from misestimated executed plans into new knowledge base epochs.
type OnlineOptions = learning.OnlineOptions

// OnlineStats counts the online learner's progress.
type OnlineStats = learning.OnlineStats

// ReoptRequest and ReoptResponse are the POST /reopt API bodies served by
// System.APIHandler / System.Serve.
type ReoptRequest = core.ReoptRequest

// ReoptResponse is the answer to a ReoptRequest.
type ReoptResponse = core.ReoptResponse

// AdmissionOptions configures serving-time admission control on /reopt:
// per-client probe budgets and load shedding when the matcher saturates.
type AdmissionOptions = core.AdmissionOptions

// ExecOptions configures the system executor: exchange parallelism per
// execution (Workers) and the peak-residency memory budget the governor
// admits concurrent executions against (MemBudgetBytes).
type ExecOptions = core.ExecOptions

// SyncPolicy selects when Config.DataDir's write-ahead log fsyncs: every
// record, on a short interval, or never (the OS decides).
type SyncPolicy = wal.SyncPolicy

// RecoveryInfo summarizes what System.OpenDataDir found in the data
// directory on boot.
type RecoveryInfo = core.RecoveryInfo

// MatchingOptions configures the online matching engine.
type MatchingOptions = matching.Options

// MatchResult is the outcome of re-optimizing one query.
type MatchResult = matching.Result

// Query is a parsed SQL query.
type Query = sqlparser.Query

// Plan is a query execution plan (QGM).
type Plan = qgm.Plan

// ExecResult is the result of executing a plan.
type ExecResult = executor.Result

// KnowledgeBase is GALO's RDF-backed store of problem-pattern templates.
type KnowledgeBase = kb.KB

// Template is one problem-pattern template with its recommended rewrite.
type Template = kb.Template

// Guidelines is an OPTGUIDELINES document.
type Guidelines = guideline.Document

// Database is the minidb storage layer holding a populated schema.
type Database = storage.Database

// NewSystem creates a GALO system over a database with an empty knowledge
// base.
func NewSystem(db *Database, cfg Config) *System { return core.NewSystem(db, cfg) }

// DefaultConfig returns the configuration used in the paper-reproduction
// experiments.
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultLearningOptions returns the default offline-learning configuration.
func DefaultLearningOptions() LearningOptions { return learning.DefaultOptions() }

// DefaultMatchingOptions returns the default online-matching configuration.
func DefaultMatchingOptions() MatchingOptions { return matching.DefaultOptions() }

// DefaultOnlineOptions returns the online-learning configuration used by
// `galo serve -online`.
func DefaultOnlineOptions() OnlineOptions { return learning.DefaultOnlineOptions() }

// ParseSyncPolicy parses "always", "interval" or "never" into the matching
// WAL sync policy for Config.Sync.
func ParseSyncPolicy(s string) (SyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// ParseSQL parses a SQL statement in the supported subset.
func ParseSQL(sql string) (*Query, error) { return sqlparser.Parse(sql) }

// MustParseSQL parses a SQL statement and panics on error.
func MustParseSQL(sql string) *Query { return sqlparser.MustParse(sql) }

// FormatPlan renders a plan as an indented operator tree in the style of the
// paper's figures.
func FormatPlan(p *Plan) string { return qgm.Format(p) }

// NewKnowledgeBase returns an empty single-shard knowledge base.
func NewKnowledgeBase() *KnowledgeBase { return kb.New() }

// NewShardedKnowledgeBase returns an empty knowledge base split across n
// shards: each template lives in exactly one shard (routed by a prefix of
// its problem shape signature) and epoch publications never touch the other
// shards.
func NewShardedKnowledgeBase(n int) *KnowledgeBase { return kb.NewSharded(n) }

// --- Shard fleet -------------------------------------------------------------

// FleetOptions configures the remote-shard gateway (Config.Fleet): per-shard
// replica URL lists, the retry/hedge/breaker policy, and the rebalancer.
type FleetOptions = fleet.Options

// FleetPolicy is the gateway's fault-tolerance policy: probe deadlines,
// retry/backoff, hedging, and the per-replica circuit breaker.
type FleetPolicy = fleet.Policy

// RebalanceOptions configures the probe-skew rebalancer driving two-epoch
// template migrations between fleet shards.
type RebalanceOptions = fleet.RebalanceOptions

// FleetStats is the /stats "fleet" section.
type FleetStats = fleet.Stats

// ShardServer serves one knowledge base shard over the fleet's HTTP surface —
// the process behind `galo shard`.
type ShardServer = fleet.ShardServer

// NewShardServer wraps a knowledge base in the fleet shard HTTP surface.
func NewShardServer(knowledge *KnowledgeBase) *ShardServer {
	return fleet.NewShardServer(knowledge)
}

// ShardSlice extracts shard `shard` of `shards` from a full knowledge base
// dump (N-Triples), using the same shape-prefix routing the sharded KB and
// the fleet gateway use — the loader behind `galo shard -kb`.
func ShardSlice(ntriples string, shard, shards int) (string, error) {
	return kb.ShardSlice(ntriples, shard, shards)
}

// RetryAfter reads a response's Retry-After header — the serving API stamps
// it on 429 (admission control) and 503 (draining) — as a wait duration.
// Both RFC 9110 forms are understood: delta-seconds and an HTTP-date. The
// second return is false when the header is absent or malformed; a date in
// the past yields (0, true) — retry immediately.
func RetryAfter(resp *http.Response) (time.Duration, bool) {
	v := strings.TrimSpace(resp.Header.Get("Retry-After"))
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.ParseInt(v, 10, 64); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// --- Workloads ---------------------------------------------------------------

// TPCDSOptions controls generation of the TPC-DS-like evaluation workload.
type TPCDSOptions = tpcds.GenOptions

// ClientOptions controls generation of the IBM-client-like evaluation
// workload.
type ClientOptions = client.GenOptions

// GenerateTPCDS builds the TPC-DS-like database (schema, data, statistics and
// — when Hazards is set — the estimation hazards the problem patterns stem
// from).
func GenerateTPCDS(opts TPCDSOptions) (*Database, error) { return tpcds.Generate(opts) }

// TPCDSQueries returns the 99-query TPC-DS-like workload.
func TPCDSQueries() []*Query { return tpcds.Queries() }

// Fig8WideQuery returns the wide-range Figure 8 variant over the generated
// database: the query whose stale-histogram misestimate deterministically
// drives the MSJOIN→HSJOIN problem pattern.
func Fig8WideQuery(db *Database) *Query { return tpcds.Fig8WideQuery(db) }

// Fig8WideVariants returns n wide-range Figure 8 variants with progressively
// wider date ranges.
func Fig8WideVariants(db *Database, n int) []*Query { return tpcds.Fig8WideVariants(db, n) }

// GenerateClient builds the client-like database.
func GenerateClient(opts ClientOptions) (*Database, error) { return client.Generate(opts) }

// ClientQueries returns the 116-query client-like workload.
func ClientQueries() []*Query { return client.Queries() }

// --- Workload zoo ------------------------------------------------------------

// Scenario is one adversarial workload of the zoo: a deterministic generator
// with a built-in estimation hazard, the hazard queries, and the statistical
// remedy that fixes it (see internal/workload/scenario).
type Scenario = scenario.Scenario

// ScenarioGenOptions controls zoo scenario generation.
type ScenarioGenOptions = scenario.GenOptions

// TenancyOptions configures per-tenant knowledge base namespaces on the
// serving API (Config.Tenancy).
type TenancyOptions = core.TenancyOptions

// Scenarios returns the workload zoo in registry order (ohlc, joblike,
// trace).
func Scenarios() []Scenario { return experiments.Scenarios() }

// ScenarioByName looks a zoo scenario up by its registry name.
func ScenarioByName(name string) (Scenario, bool) { return experiments.ScenarioByName(name) }

// ZooResult is one zoo scenario's pre/post-learning estimation quality:
// per-scan q-error quantiles over the scenario's hazard queries before and
// after its statistical remedy.
type ZooResult = experiments.ZooResult

// RunZoo generates every zoo scenario, measures per-scan q-error over its
// hazard queries under default statistics, applies the scenario's remedy and
// measures again. scale overrides every scenario's data scale; 0 keeps the
// per-scenario experiment defaults.
func RunZoo(scale float64) ([]ZooResult, error) {
	cfg := experiments.DefaultConfig()
	if scale > 0 {
		cfg.WorkloadScales = map[string]float64{}
		for _, sc := range experiments.Scenarios() {
			cfg.WorkloadScales[sc.Name()] = scale
		}
	}
	return experiments.RunZoo(cfg)
}

// TraceArrival is one request of a multi-tenant arrival trace.
type TraceArrival = trace.Arrival

// TraceOptions controls multi-tenant arrival-trace generation.
type TraceOptions = trace.TraceOptions

// TraceArrivals generates a deterministic multi-tenant arrival trace over the
// trace workload's query mix ("bursty" or "steady" profile).
func TraceArrivals(opts TraceOptions) []TraceArrival { return trace.Arrivals(opts) }

// ReplayTrace dispatches every arrival at its scheduled offset divided by
// speedup, each concurrently, and waits for all of them to return.
func ReplayTrace(arrivals []TraceArrival, speedup float64, do func(TraceArrival)) {
	trace.Replay(arrivals, speedup, do)
}
