// Microbenchmarks for the knowledge base probe path, proving the property
// the dictionary-encoded store is built for: per-probe cost stays ~flat as
// the knowledge base grows (the KB-size independence behind Figures 11-12 of
// the paper). TestEmitBenchMatchingJSON records the measured numbers in
// BENCH_matching.json so future PRs can track the perf trajectory.
package galo_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"galo/internal/experiments"
	"galo/internal/fuseki"
	"galo/internal/kb"
	"galo/internal/matching"
	"galo/internal/qgm"
	"galo/internal/transform"
)

// benchKBSizes are the 1x/4x/16x knowledge base sizes (in templates; each
// template carries ~15-30 triples).
var benchKBSizes = []int{60, 240, 960}

func inflatedKB(tb testing.TB, templates int) *kb.KB {
	tb.Helper()
	knowledge := kb.New()
	if err := experiments.InflateKB(knowledge, templates, 20190522); err != nil {
		tb.Fatal(err)
	}
	return knowledge
}

// probePlan builds a synthetic two-join plan shaped like the fragments the
// matching engine probes with (the same shapes InflateKB stores).
func probePlan() *qgm.Plan {
	scanA := &qgm.Node{Op: qgm.OpTBSCAN, Table: "T_A", TableInstance: "T_A", EstCardinality: 40000}
	scanB := &qgm.Node{Op: qgm.OpIXSCAN, Table: "T_B", TableInstance: "T_B", Index: "IX_B", EstCardinality: 900}
	scanC := &qgm.Node{Op: qgm.OpTBSCAN, Table: "T_C", TableInstance: "T_C", EstCardinality: 15000}
	join1 := &qgm.Node{Op: qgm.OpHSJOIN, Outer: scanA, Inner: scanB, EstCardinality: 120000}
	join2 := &qgm.Node{Op: qgm.OpNLJOIN, Outer: join1, Inner: scanC, EstCardinality: 350000}
	return qgm.NewPlan(join2)
}

// BenchmarkStoreMatch measures raw index probes against the dictionary-
// encoded store across 1x/4x/16x knowledge base sizes. The probed subjects
// are fixed, so a KB-size-independent store must report ~constant ns/op
// across the three sub-benchmarks.
func BenchmarkStoreMatch(b *testing.B) {
	inTemplate := transform.Prop(transform.PropInTemplate)
	popType := transform.Prop(transform.PropPopType)
	for _, size := range benchKBSizes {
		b.Run(fmt.Sprintf("templates=%d", size), func(b *testing.B) {
			store := inflatedKB(b, size).Store()
			// The same operator resources exist at every size (InflateKB is
			// deterministic and prefix-stable), so the probed working set is
			// identical across sub-benchmarks.
			pops := store.SubjectsWithPred(popType)[:32]
			b.ReportMetric(float64(store.Len()), "triples")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pop := pops[i%len(pops)]
				store.Match(&pop, &popType, nil)
				store.ObjectsOf(pop, inTemplate)
				store.CountSP(pop, popType)
			}
		})
	}
}

// BenchmarkKBProbeCold measures one full SPARQL probe (parse + selectivity-
// ordered evaluation) of a plan fragment against knowledge bases of growing
// size, bypassing the routinization cache.
func BenchmarkKBProbeCold(b *testing.B) {
	frag := probePlan().Root.Outer
	queryText, _, err := transform.FragmentMatchQuery(frag)
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range benchKBSizes {
		b.Run(fmt.Sprintf("templates=%d", size), func(b *testing.B) {
			endpoint := fuseki.LocalEndpoint{Store: inflatedKB(b, size).Store()}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := endpoint.Select(queryText); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKBProbeRoutinized measures the same probes through the matching
// engine's LRU fingerprint cache — the paper's routinization fast path
// (Figure 12), which must be ~flat in knowledge base size.
func BenchmarkKBProbeRoutinized(b *testing.B) {
	plan := probePlan()
	for _, size := range benchKBSizes {
		b.Run(fmt.Sprintf("templates=%d", size), func(b *testing.B) {
			endpoint := fuseki.LocalEndpoint{Store: inflatedKB(b, size).Store()}
			eng := matching.New(nil, endpoint, matching.DefaultOptions())
			if _, err := eng.MatchPlan(plan); err != nil { // warm the cache
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.MatchPlan(plan); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchRow is one BENCH_matching.json entry.
type benchRow struct {
	KBTemplates              int     `json:"kb_templates"`
	KBTriples                int     `json:"kb_triples"`
	ColdNsPerProbe           float64 `json:"cold_ns_per_probe"`
	RoutinizedNsPerMatchPlan float64 `json:"routinized_ns_per_matchplan"`
}

// TestEmitBenchMatchingJSON measures probe latency across the 1x/4x/16x
// knowledge base sizes and records it in BENCH_matching.json, the perf
// trajectory file future PRs diff against. It only runs when
// GALO_BENCH_JSON=1 (CI's benchmark job sets it) so that a plain
// `go test ./...` stays hermetic.
func TestEmitBenchMatchingJSON(t *testing.T) {
	if os.Getenv("GALO_BENCH_JSON") == "" {
		t.Skip("set GALO_BENCH_JSON=1 to (re)write BENCH_matching.json")
	}
	plan := probePlan()
	queryText, _, err := transform.FragmentMatchQuery(plan.Root.Outer)
	if err != nil {
		t.Fatal(err)
	}
	var rows []benchRow
	for _, size := range benchKBSizes {
		store := inflatedKB(t, size).Store()
		endpoint := fuseki.LocalEndpoint{Store: store}
		const coldRounds = 200
		start := time.Now()
		for i := 0; i < coldRounds; i++ {
			if _, err := endpoint.Select(queryText); err != nil {
				t.Fatal(err)
			}
		}
		cold := float64(time.Since(start).Nanoseconds()) / coldRounds

		eng := matching.New(nil, endpoint, matching.DefaultOptions())
		if _, err := eng.MatchPlan(plan); err != nil {
			t.Fatal(err)
		}
		const warmRounds = 500
		start = time.Now()
		for i := 0; i < warmRounds; i++ {
			if _, err := eng.MatchPlan(plan); err != nil {
				t.Fatal(err)
			}
		}
		warm := float64(time.Since(start).Nanoseconds()) / warmRounds
		rows = append(rows, benchRow{
			KBTemplates:              size,
			KBTriples:                store.Len(),
			ColdNsPerProbe:           cold,
			RoutinizedNsPerMatchPlan: warm,
		})
	}
	doc := map[string]any{
		"benchmark": "knowledge base probe latency vs KB size (ns)",
		"note":      "cold = one SPARQL fragment probe without cache; routinized = full MatchPlan through the LRU fingerprint cache. Near-constant columns across rows are the KB-size independence result (Figures 11-12).",
		"rows":      rows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_matching.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_matching.json:\n%s", data)
}
