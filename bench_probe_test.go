// Microbenchmarks for the knowledge base probe path, proving the property
// the dictionary-encoded store is built for: per-probe cost stays ~flat as
// the knowledge base grows (the KB-size independence behind Figures 11-12 of
// the paper). TestEmitBenchMatchingJSON records the measured numbers in
// BENCH_matching.json so future PRs can track the perf trajectory.
package galo_test

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"galo/internal/experiments"
	"galo/internal/fuseki"
	"galo/internal/kb"
	"galo/internal/matching"
	"galo/internal/qgm"
	"galo/internal/transform"
)

// benchKBSizes are the 1x/4x/16x knowledge base sizes (in templates; each
// template carries ~15-30 triples).
var benchKBSizes = []int{60, 240, 960}

func inflatedKB(tb testing.TB, templates int) *kb.KB {
	tb.Helper()
	knowledge := kb.New()
	if err := experiments.InflateKB(knowledge, templates, 20190522); err != nil {
		tb.Fatal(err)
	}
	return knowledge
}

// probePlan builds a synthetic two-join plan shaped like the fragments the
// matching engine probes with (the same shapes InflateKB stores).
func probePlan() *qgm.Plan {
	scanA := &qgm.Node{Op: qgm.OpTBSCAN, Table: "T_A", TableInstance: "T_A", EstCardinality: 40000}
	scanB := &qgm.Node{Op: qgm.OpIXSCAN, Table: "T_B", TableInstance: "T_B", Index: "IX_B", EstCardinality: 900}
	scanC := &qgm.Node{Op: qgm.OpTBSCAN, Table: "T_C", TableInstance: "T_C", EstCardinality: 15000}
	join1 := &qgm.Node{Op: qgm.OpHSJOIN, Outer: scanA, Inner: scanB, EstCardinality: 120000}
	join2 := &qgm.Node{Op: qgm.OpNLJOIN, Outer: join1, Inner: scanC, EstCardinality: 350000}
	return qgm.NewPlan(join2)
}

// BenchmarkStoreMatch measures raw index probes against the dictionary-
// encoded store across 1x/4x/16x knowledge base sizes. The probed subjects
// are fixed, so a KB-size-independent store must report ~constant ns/op
// across the three sub-benchmarks.
func BenchmarkStoreMatch(b *testing.B) {
	inTemplate := transform.Prop(transform.PropInTemplate)
	popType := transform.Prop(transform.PropPopType)
	for _, size := range benchKBSizes {
		b.Run(fmt.Sprintf("templates=%d", size), func(b *testing.B) {
			store := inflatedKB(b, size).Store()
			// The same operator resources exist at every size (InflateKB is
			// deterministic and prefix-stable), so the probed working set is
			// identical across sub-benchmarks.
			pops := store.SubjectsWithPred(popType)[:32]
			b.ReportMetric(float64(store.Len()), "triples")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pop := pops[i%len(pops)]
				store.Match(&pop, &popType, nil)
				store.ObjectsOf(pop, inTemplate)
				store.CountSP(pop, popType)
			}
		})
	}
}

// unboundedProbe strips the LIMIT clause the transformation engine now emits
// on probe queries, reconstructing the unbounded enumeration for comparison.
func unboundedProbe(queryText string) string {
	if i := strings.LastIndex(queryText, "\nLIMIT "); i >= 0 {
		return queryText[:i] + "\n"
	}
	return queryText
}

// saturatedKB builds a knowledge base of n distinct templates that ALL match
// the same one-join probe shape (HSJOIN over a TBSCAN and an IXSCAN, wide
// cardinality bounds): the worst case for cold probes, where solution
// enumeration used to grow linearly with the number of matching templates.
// Distinct canonical labels keep the problem signatures distinct, so the KB
// does not merge them.
func saturatedKB(tb testing.TB, n int) *kb.KB {
	tb.Helper()
	knowledge := kb.New()
	for i := 0; i < n; i++ {
		outer := &qgm.Node{Op: qgm.OpTBSCAN, Table: fmt.Sprintf("SAT_A%d", i), TableInstance: fmt.Sprintf("SAT_A%d", i), EstCardinality: 40000}
		inner := &qgm.Node{Op: qgm.OpIXSCAN, Table: fmt.Sprintf("SAT_B%d", i), TableInstance: fmt.Sprintf("SAT_B%d", i), Index: "IX", EstCardinality: 900}
		join := &qgm.Node{Op: qgm.OpHSJOIN, Outer: outer, Inner: inner, EstCardinality: 120000}
		plan := qgm.NewPlan(join)
		problem := plan.Root.Outer
		bounds := map[int]kb.Range{}
		problem.Walk(func(x *qgm.Node) {
			bounds[x.ID] = kb.Range{Lo: x.EstCardinality / 10, Hi: x.EstCardinality * 10}
		})
		if _, err := knowledge.Add(&kb.Template{
			Problem:      problem,
			Bounds:       bounds,
			GuidelineXML: "<OPTGUIDELINES><HSJOIN><TBSCAN TABID='TABLE_1'/><TBSCAN TABID='TABLE_2'/></HSJOIN></OPTGUIDELINES>",
			Improvement:  0.2 + float64(i%100)/1000,
			Structural:   true,
		}); err != nil {
			tb.Fatal(err)
		}
	}
	return knowledge
}

// saturatedProbe is the one-join fragment every saturatedKB template matches.
func saturatedProbe() *qgm.Node {
	outer := &qgm.Node{Op: qgm.OpTBSCAN, Table: "T_X", TableInstance: "Q1", EstCardinality: 40000}
	inner := &qgm.Node{Op: qgm.OpIXSCAN, Table: "T_Y", TableInstance: "Q2", Index: "IX_Y", EstCardinality: 900}
	join := &qgm.Node{Op: qgm.OpHSJOIN, Outer: outer, Inner: inner, EstCardinality: 120000}
	return qgm.NewPlan(join).Root.Outer
}

// BenchmarkKBProbeCold measures one full SPARQL probe (parse + selectivity-
// ordered evaluation) of a plan fragment against knowledge bases of growing
// size, bypassing the routinization cache. Probes carry the matcher's LIMIT
// (transform.ProbeSolutionLimit), which bounds solution enumeration when many
// templates match.
func BenchmarkKBProbeCold(b *testing.B) {
	frag := probePlan().Root.Outer
	queryText, _, err := transform.FragmentMatchQuery(frag)
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range benchKBSizes {
		b.Run(fmt.Sprintf("templates=%d", size), func(b *testing.B) {
			endpoint := fuseki.LocalEndpoint{Store: inflatedKB(b, size).Store()}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := endpoint.Select(queryText); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKBProbeColdManyMatches probes a knowledge base in which EVERY
// template matches the probed fragment — the worst case the ROADMAP's
// cold-probe item describes, where solution enumeration dominates. The
// bounded variant carries the matcher's LIMIT (transform.ProbeSolutionLimit)
// and must stay ~flat as the matching-template count grows; the unbounded
// variant enumerates every match and grows linearly.
func BenchmarkKBProbeColdManyMatches(b *testing.B) {
	queryText, _, err := transform.FragmentMatchQuery(saturatedProbe())
	if err != nil {
		b.Fatal(err)
	}
	for _, bounded := range []bool{true, false} {
		text := queryText
		name := "bounded"
		if !bounded {
			text = unboundedProbe(queryText)
			name = "unbounded"
		}
		for _, size := range benchKBSizes {
			b.Run(fmt.Sprintf("%s/templates=%d", name, size), func(b *testing.B) {
				endpoint := fuseki.LocalEndpoint{Store: saturatedKB(b, size).Store()}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := endpoint.Select(text); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkKBProbeRoutinized measures the same probes through the matching
// engine's LRU fingerprint cache — the paper's routinization fast path
// (Figure 12), which must be ~flat in knowledge base size.
func BenchmarkKBProbeRoutinized(b *testing.B) {
	plan := probePlan()
	for _, size := range benchKBSizes {
		b.Run(fmt.Sprintf("templates=%d", size), func(b *testing.B) {
			endpoint := fuseki.LocalEndpoint{Store: inflatedKB(b, size).Store()}
			eng := matching.New(nil, endpoint, matching.DefaultOptions())
			if _, err := eng.MatchPlan(plan); err != nil { // warm the cache
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.MatchPlan(plan); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchRow is one BENCH_matching.json entry.
type benchRow struct {
	KBTemplates              int     `json:"kb_templates"`
	KBTriples                int     `json:"kb_triples"`
	ColdNsPerProbe           float64 `json:"cold_ns_per_probe"`
	RoutinizedNsPerMatchPlan float64 `json:"routinized_ns_per_matchplan"`
	// The many-matches pair probes a KB where every template matches the
	// fragment: bounded carries the matcher's LIMIT, unbounded enumerates
	// everything (the pre-bound behaviour).
	ManyMatchesBoundedNs   float64 `json:"many_matches_bounded_ns"`
	ManyMatchesUnboundedNs float64 `json:"many_matches_unbounded_ns"`
}

// TestEmitBenchMatchingJSON measures probe latency across the 1x/4x/16x
// knowledge base sizes and records it in BENCH_matching.json, the perf
// trajectory file future PRs diff against. It only runs when
// GALO_BENCH_JSON=1 (CI's benchmark job sets it) so that a plain
// `go test ./...` stays hermetic.
func TestEmitBenchMatchingJSON(t *testing.T) {
	if os.Getenv("GALO_BENCH_JSON") == "" {
		t.Skip("set GALO_BENCH_JSON=1 to (re)write BENCH_matching.json")
	}
	plan := probePlan()
	queryText, _, err := transform.FragmentMatchQuery(plan.Root.Outer)
	if err != nil {
		t.Fatal(err)
	}
	var rows []benchRow
	for _, size := range benchKBSizes {
		store := inflatedKB(t, size).Store()
		endpoint := fuseki.LocalEndpoint{Store: store}
		const coldRounds = 200
		start := time.Now()
		for i := 0; i < coldRounds; i++ {
			if _, err := endpoint.Select(queryText); err != nil {
				t.Fatal(err)
			}
		}
		cold := float64(time.Since(start).Nanoseconds()) / coldRounds

		// Worst-case enumeration: every template matches the probe.
		satText, _, err := transform.FragmentMatchQuery(saturatedProbe())
		if err != nil {
			t.Fatal(err)
		}
		satEndpoint := fuseki.LocalEndpoint{Store: saturatedKB(t, size).Store()}
		measure := func(text string) float64 {
			start := time.Now()
			for i := 0; i < coldRounds; i++ {
				if _, err := satEndpoint.Select(text); err != nil {
					t.Fatal(err)
				}
			}
			return float64(time.Since(start).Nanoseconds()) / coldRounds
		}
		satBounded := measure(satText)
		satUnbounded := measure(unboundedProbe(satText))

		eng := matching.New(nil, endpoint, matching.DefaultOptions())
		if _, err := eng.MatchPlan(plan); err != nil {
			t.Fatal(err)
		}
		const warmRounds = 500
		start = time.Now()
		for i := 0; i < warmRounds; i++ {
			if _, err := eng.MatchPlan(plan); err != nil {
				t.Fatal(err)
			}
		}
		warm := float64(time.Since(start).Nanoseconds()) / warmRounds
		rows = append(rows, benchRow{
			KBTemplates:              size,
			KBTriples:                store.Len(),
			ColdNsPerProbe:           cold,
			RoutinizedNsPerMatchPlan: warm,
			ManyMatchesBoundedNs:     satBounded,
			ManyMatchesUnboundedNs:   satUnbounded,
		})
	}
	doc := map[string]any{
		"benchmark": "knowledge base probe latency vs KB size (ns)",
		"note":      "cold = one SPARQL fragment probe without cache; routinized = full MatchPlan through the LRU fingerprint cache; many_matches_* = worst-case probe of a KB where every template matches, with (bounded, LIMIT " + fmt.Sprint(transform.ProbeSolutionLimit) + ") and without (unbounded) the matcher's top-k bound. Near-constant columns across rows are the KB-size independence result (Figures 11-12).",
		"rows":      rows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_matching.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_matching.json:\n%s", data)
}
