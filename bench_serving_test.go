// Serving benchmark: GALO as an always-on re-optimization service. Drives
// the HTTP /reopt API with 1/4/16 concurrent clients against a trained
// knowledge base and records throughput plus p50/p99 latency — wall-clock
// per request and server-side knowledge base match time — cold (first sight
// of each fragment fingerprint) and routinized (repeat traffic through the
// sharded probe cache). TestEmitBenchServingJSON writes BENCH_serving.json,
// the trajectory file CI uploads; it also gates the Figure 12 claim under
// concurrency: routinized p50 match latency at 16 clients must stay within
// 2x of the single-client number.
package galo_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"galo"
	"galo/internal/experiments"
	"galo/internal/workload/tpcds"
)

var servingFixture struct {
	once    sync.Once
	err     error
	db      *galo.Database
	kbPath  string
	queries []*galo.Query
}

// servingSystem returns a freshly constructed system over the shared trained
// knowledge base (fresh matcher and cache — cold), plus the request pool.
func servingSystem(tb testing.TB) (*galo.System, []*galo.Query) {
	tb.Helper()
	servingFixture.once.Do(func() {
		db, err := tpcds.Generate(tpcds.GenOptions{Seed: 31, Scale: 0.08, Hazards: true})
		if err != nil {
			servingFixture.err = err
			return
		}
		cfg := galo.DefaultConfig()
		cfg.Learning.RandomPlans = 8
		cfg.Learning.PredicateVariants = 1
		cfg.Learning.Runs = 2
		cfg.Learning.Workers = 4
		cfg.Learning.MaxSubQueriesPerQuery = 10
		cfg.Learning.Workload = "tpcds"
		sys := galo.NewSystem(db, cfg)
		train := []*galo.Query{tpcds.Fig8Query(), tpcds.Fig7Query(), tpcds.Fig4Query()}
		if _, err := sys.Learn(train); err != nil {
			servingFixture.err = err
			return
		}
		f, err := os.CreateTemp(tb.TempDir(), "kb-*.nt")
		if err != nil {
			servingFixture.err = err
			return
		}
		f.Close()
		if err := sys.SaveKB(f.Name()); err != nil {
			servingFixture.err = err
			return
		}
		servingFixture.db = db
		servingFixture.kbPath = f.Name()
		// The request pool: the learned figure queries plus a slice of the
		// TPC-DS workload — a mix of matching and non-matching traffic, as a
		// serving deployment would see.
		pool := append([]*galo.Query{}, train...)
		pool = append(pool, tpcds.Queries()[:9]...)
		servingFixture.queries = pool
	})
	if servingFixture.err != nil {
		tb.Fatal(servingFixture.err)
	}
	sys := galo.NewSystem(servingFixture.db, galo.DefaultConfig())
	if err := sys.LoadKB(servingFixture.kbPath); err != nil {
		tb.Fatal(err)
	}
	return sys, servingFixture.queries
}

// sample is one measured /reopt request.
type sample struct {
	wallMillis  float64
	probeMillis float64
}

// drive issues `passes` rounds of the query pool from each of `clients`
// concurrent goroutines against the server and returns every request sample
// plus the phase's wall-clock duration.
func drive(tb testing.TB, url string, queries []*galo.Query, clients, passes int) ([]sample, time.Duration) {
	tb.Helper()
	results := make([][]sample, clients)
	var wg sync.WaitGroup
	httpc := &http.Client{}
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for p := 0; p < passes; p++ {
				for i := range queries {
					q := queries[(i+c)%len(queries)]
					payload, _ := json.Marshal(galo.ReoptRequest{SQL: q.SQL(), Name: q.Name})
					t0 := time.Now()
					resp, err := httpc.Post(url+"/reopt", "application/json", bytes.NewReader(payload))
					if err != nil {
						tb.Errorf("client %d: %v", c, err)
						return
					}
					var out galo.ReoptResponse
					decErr := json.NewDecoder(resp.Body).Decode(&out)
					resp.Body.Close()
					if decErr != nil || resp.StatusCode != http.StatusOK {
						tb.Errorf("client %d: status %d decode %v", c, resp.StatusCode, decErr)
						return
					}
					results[c] = append(results[c], sample{
						wallMillis:  float64(time.Since(t0).Microseconds()) / 1000,
						probeMillis: out.ProbeMillis,
					})
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var all []sample
	for _, r := range results {
		all = append(all, r...)
	}
	return all, elapsed
}

func percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// servingRow is one BENCH_serving.json entry.
type servingRow struct {
	Clients        int     `json:"clients"`
	Phase          string  `json:"phase"` // "cold" or "routinized"
	Requests       int     `json:"requests"`
	ThroughputRPS  float64 `json:"throughput_rps"`
	WallP50Millis  float64 `json:"wall_p50_ms"`
	WallP99Millis  float64 `json:"wall_p99_ms"`
	ProbeP50Millis float64 `json:"match_p50_ms"`
	ProbeP99Millis float64 `json:"match_p99_ms"`
}

func measureServing(tb testing.TB, clients int) (cold, routinized servingRow) {
	sys, queries := servingSystem(tb) // fresh system: empty probe cache
	defer sys.Close()
	srv := httptest.NewServer(sys.APIHandler())
	defer srv.Close()

	rowFor := func(phase string, samples []sample, elapsed time.Duration) servingRow {
		wall := make([]float64, len(samples))
		probe := make([]float64, len(samples))
		for i, s := range samples {
			wall[i] = s.wallMillis
			probe[i] = s.probeMillis
		}
		return servingRow{
			Clients:        clients,
			Phase:          phase,
			Requests:       len(samples),
			ThroughputRPS:  float64(len(samples)) / elapsed.Seconds(),
			WallP50Millis:  percentile(wall, 0.50),
			WallP99Millis:  percentile(wall, 0.99),
			ProbeP50Millis: percentile(probe, 0.50),
			ProbeP99Millis: percentile(probe, 0.99),
		}
	}
	// Cold: the pool's first sight — every fragment fingerprint pays (or
	// joins, via singleflight) a real SPARQL probe.
	samples, elapsed := drive(tb, srv.URL, queries, clients, 1)
	cold = rowFor("cold", samples, elapsed)
	// Routinized: repeat traffic over the warmed cache (Figure 12).
	samples, elapsed = drive(tb, srv.URL, queries, clients, 3)
	routinized = rowFor("routinized", samples, elapsed)
	return cold, routinized
}

// BenchmarkServingReopt reports ns/request of the routinized serving path at
// GOMAXPROCS-parallel clients (go test -bench).
func BenchmarkServingReopt(b *testing.B) {
	sys, queries := servingSystem(b)
	defer sys.Close()
	srv := httptest.NewServer(sys.APIHandler())
	defer srv.Close()
	// Warm the cache.
	drive(b, srv.URL, queries, 1, 1)
	q := queries[0]
	payload, _ := json.Marshal(galo.ReoptRequest{SQL: q.SQL(), Name: q.Name})
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := http.Post(srv.URL+"/reopt", "application/json", bytes.NewReader(payload))
			if err != nil {
				b.Error(err)
				return
			}
			resp.Body.Close()
		}
	})
}

// fleetServingRow is one entry of BENCH_serving.json's "fleet" section: the
// same 16-client drive once with every replica up and once across a replica
// SIGKILL, so the two rows quantify what the gateway's retries and failover
// cost under faults.
type fleetServingRow struct {
	Phase          string  `json:"phase"` // "intact" or "one_replica_killed"
	Clients        int     `json:"clients"`
	Requests       int     `json:"requests"`
	FailedRequests int     `json:"failed_requests"`
	ThroughputRPS  float64 `json:"throughput_rps"`
	WallP50Millis  float64 `json:"wall_p50_ms"`
	WallP99Millis  float64 `json:"wall_p99_ms"`
}

// measureFleetServing drives the serving workload through a remote shard
// fleet (2 shards x 2 chaos replicas over the trained dump), kills one
// replica, and measures the intact phase, the SIGKILL-to-first-successful-
// failover-probe recovery time, and the degraded phase. Zero requests may
// fail in either phase, and the degraded p50 must stay within 2x of intact.
func measureFleetServing(t *testing.T) (intact, killed fleetServingRow, recovery time.Duration, stats galo.FleetStats) {
	boot, queries := servingSystem(t) // ensures the trained fixture exists
	boot.Close()
	dump, err := os.ReadFile(servingFixture.kbPath)
	if err != nil {
		t.Fatal(err)
	}
	harness, err := experiments.NewFleetHarness(string(dump), 2, 2, galo.FleetPolicy{
		ProbeTimeout:    5 * time.Second,
		MaxAttempts:     4,
		BackoffBase:     2 * time.Millisecond,
		BackoffCap:      50 * time.Millisecond,
		BreakerCooldown: 200 * time.Millisecond,
		Seed:            7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer harness.Close()

	cfg := galo.DefaultConfig()
	cfg.Shards = 2
	// Every request must drive real network probes: the routinization cache
	// would serve repeat traffic locally and hide the kill from the gateway.
	cfg.Matching.ProbeCacheSize = -1
	cfg.Fleet = harness.Options
	sys := galo.NewSystem(servingFixture.db, cfg)
	defer sys.Close()
	srv := httptest.NewServer(sys.APIHandler())
	defer srv.Close()

	const clients, passes = 16, 2
	rowFor := func(phase string, samples []sample, elapsed time.Duration) fleetServingRow {
		wall := make([]float64, len(samples))
		for i, s := range samples {
			wall[i] = s.wallMillis
		}
		return fleetServingRow{
			Phase:          phase,
			Clients:        clients,
			Requests:       clients * passes * len(queries),
			FailedRequests: clients*passes*len(queries) - len(samples),
			ThroughputRPS:  float64(len(samples)) / elapsed.Seconds(),
			WallP50Millis:  percentile(wall, 0.50),
			WallP99Millis:  percentile(wall, 0.99),
		}
	}

	samples, elapsed := drive(t, srv.URL, queries, clients, passes)
	intact = rowFor("intact", samples, elapsed)

	// SIGKILL one replica of shard 0 and time until the first /reopt
	// succeeds again through failover.
	probe := queries[0]
	payload, _ := json.Marshal(galo.ReoptRequest{SQL: probe.SQL(), Name: probe.Name})
	recovery, err = harness.KillRecovery(0, 0, func() error {
		resp, err := http.Post(srv.URL+"/reopt", "application/json", bytes.NewReader(payload))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return errStatus(resp.StatusCode)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	samples, elapsed = drive(t, srv.URL, queries, clients, passes)
	killed = rowFor("one_replica_killed", samples, elapsed)

	var st struct {
		Fleet galo.FleetStats `json:"fleet"`
	}
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return intact, killed, recovery, st.Fleet
}

type errStatus int

func (e errStatus) Error() string { return "reopt status " + http.StatusText(int(e)) }

// TestEmitBenchServingJSON measures the serving benchmark at 1/4/16
// concurrent clients and records it in BENCH_serving.json. It only runs when
// GALO_BENCH_JSON=1 (CI's benchmark job sets it) so that a plain
// `go test ./...` stays hermetic. It fails when the Figure 12 amortization
// does not survive concurrency: routinized p50 match latency at 16 clients
// must stay within 2x of the single-client number (a small epsilon absorbs
// timer granularity at microsecond scale).
func TestEmitBenchServingJSON(t *testing.T) {
	if os.Getenv("GALO_BENCH_JSON") == "" {
		t.Skip("set GALO_BENCH_JSON=1 to (re)write BENCH_serving.json")
	}
	var rows []servingRow
	routinizedP50 := map[int]float64{}
	for _, clients := range []int{1, 4, 16} {
		cold, routinized := measureServing(t, clients)
		rows = append(rows, cold, routinized)
		routinizedP50[clients] = routinized.ProbeP50Millis
		t.Logf("clients=%2d cold: %.2f ms wall p50, %.3f ms match p50 | routinized: %.2f ms wall p50, %.3f ms match p50, %.0f req/s",
			clients, cold.WallP50Millis, cold.ProbeP50Millis,
			routinized.WallP50Millis, routinized.ProbeP50Millis, routinized.ThroughputRPS)
	}
	const epsilonMillis = 0.05
	if routinizedP50[16] > 2*routinizedP50[1]+epsilonMillis {
		t.Errorf("routinized p50 match latency at 16 clients (%.3f ms) exceeds 2x the single-client number (%.3f ms)",
			routinizedP50[16], routinizedP50[1])
	}

	// Fleet section: the same drive through a remote 2x2 replica fleet, with
	// one replica SIGKILLed between phases. Gates: zero failed requests in
	// either phase, and degraded p50 within 2x of intact (failover adds at
	// most one retry round trip per probe, not a multiplicative blowup).
	intact, killed, recovery, fleetStats := measureFleetServing(t)
	t.Logf("fleet: intact %.2f ms wall p50 | killed %.2f ms wall p50 | recovery %.1f ms | %d probes, %d failovers, %d retries",
		intact.WallP50Millis, killed.WallP50Millis, float64(recovery.Microseconds())/1000,
		fleetStats.Probes, fleetStats.Failovers, fleetStats.Retries)
	if intact.FailedRequests != 0 || killed.FailedRequests != 0 {
		t.Errorf("fleet phases dropped requests: intact %d, killed %d, want 0",
			intact.FailedRequests, killed.FailedRequests)
	}
	const fleetEpsilonMillis = 1.0 // absorbs scheduler noise at millisecond scale
	if killed.WallP50Millis > 2*intact.WallP50Millis+fleetEpsilonMillis {
		t.Errorf("p50 across the replica kill (%.2f ms) exceeds 2x the intact p50 (%.2f ms)",
			killed.WallP50Millis, intact.WallP50Millis)
	}
	if fleetStats.Failovers == 0 && fleetStats.Retries == 0 {
		t.Errorf("replica kill produced neither failovers nor retries — the fault was not exercised")
	}

	doc := map[string]any{
		"benchmark": "re-optimization serving: POST /reopt throughput and latency vs concurrent clients",
		"note":      "cold = first pass over the query pool (fragment fingerprints unseen; singleflight collapses concurrent duplicates); routinized = repeat passes through the sharded probe cache. match_* is server-side knowledge base probe time per request (the Figure 12 quantity); wall_* is client-observed request latency. The Figure 12 amortization must survive concurrency: routinized match p50 at 16 clients stays within 2x of 1 client.",
		"rows":      rows,
		"fleet": map[string]any{
			"note":             "16 clients through a remote shard fleet (2 shards x 2 replicas, probe cache disabled so every request probes over the network). intact = all replicas up; one_replica_killed = after SIGKILLing one replica of shard 0. kill_recovery_ms is SIGKILL to the first successful failover probe. Gates: zero failed requests in both phases, killed p50 within 2x of intact.",
			"rows":             []fleetServingRow{intact, killed},
			"kill_recovery_ms": float64(recovery.Microseconds()) / 1000,
			"probes":           fleetStats.Probes,
			"retries":          fleetStats.Retries,
			"failovers":        fleetStats.Failovers,
			"breaker_trips":    fleetStats.BreakerTrips,
		},
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_serving.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_serving.json:\n%s", data)
}
