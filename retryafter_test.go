package galo_test

import (
	"net/http"
	"testing"
	"time"

	"galo"
)

func respWithRetryAfter(v string) *http.Response {
	h := http.Header{}
	if v != "" {
		h.Set("Retry-After", v)
	}
	return &http.Response{StatusCode: http.StatusTooManyRequests, Header: h}
}

func TestRetryAfterParsesDeltaSeconds(t *testing.T) {
	d, ok := galo.RetryAfter(respWithRetryAfter("3"))
	if !ok || d != 3*time.Second {
		t.Fatalf("RetryAfter(3) = (%v, %v), want (3s, true)", d, ok)
	}
	if _, ok := galo.RetryAfter(respWithRetryAfter("")); ok {
		t.Error("missing header parsed as a wait")
	}
	if _, ok := galo.RetryAfter(respWithRetryAfter("-2")); ok {
		t.Error("negative delta parsed as a wait")
	}
	if _, ok := galo.RetryAfter(respWithRetryAfter("soon")); ok {
		t.Error("garbage parsed as a wait")
	}
}

func TestRetryAfterParsesHTTPDate(t *testing.T) {
	future := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	d, ok := galo.RetryAfter(respWithRetryAfter(future))
	if !ok || d < 80*time.Second || d > 91*time.Second {
		t.Fatalf("RetryAfter(+90s date) = (%v, %v), want ~90s", d, ok)
	}
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if d, ok := galo.RetryAfter(respWithRetryAfter(past)); !ok || d != 0 {
		t.Fatalf("RetryAfter(past date) = (%v, %v), want (0, true): retry immediately", d, ok)
	}
}
