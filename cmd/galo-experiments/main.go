// Command galo-experiments regenerates the paper's tables and figures
// (Exp-1 .. Exp-6, Figures 9-14) using the experiment harness and prints each
// as a text table. See EXPERIMENTS.md for the paper-vs-measured comparison.
//
// Usage:
//
//	galo-experiments -exp all            # run everything (several minutes)
//	galo-experiments -exp 1              # Figure 9  (learning scalability)
//	galo-experiments -exp 2              # Figure 10 (re-optimization gains + reuse)
//	galo-experiments -exp 3              # Figure 11 (matching scalability)
//	galo-experiments -exp 4              # Figure 12 (routinization)
//	galo-experiments -exp 5              # Figures 13 and 14 (vs experts)
//	galo-experiments -exp 2 -scale 0.3 -tpcds-queries 99 -client-queries 116
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"galo/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: 1..5 or all (5 covers Exp-5 and Exp-6)")
	scale := flag.Float64("scale", 0, "data scale factor (0 = harness default)")
	seed := flag.Int64("seed", 0, "generation seed (0 = harness default)")
	tpcdsQueries := flag.Int("tpcds-queries", 0, "number of TPC-DS queries (0 = harness default, 99 = full workload)")
	clientQueries := flag.Int("client-queries", 0, "number of client queries (0 = harness default, 116 = full workload)")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *tpcdsQueries != 0 {
		cfg.TPCDSQueries = *tpcdsQueries
	}
	if *clientQueries != 0 {
		cfg.ClientQueries = *clientQueries
	}

	want := func(n string) bool { return *exp == "all" || strings.Contains(*exp, n) }
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "galo-experiments:", err)
		os.Exit(1)
	}

	if want("1") {
		rows, err := experiments.RunExp1(cfg, []int{1, 2, 3, 4})
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderExp1(rows))
	}
	if want("2") {
		res, err := experiments.RunExp2(cfg)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderExp2(res))
	}
	if want("3") {
		rows, err := experiments.RunExp3(cfg, []int{2, 4, 8, 15, 24, 32})
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderExp3(rows))
	}
	if want("4") {
		rows, err := experiments.RunExp4(cfg, []int{10, 20, 40, 80}, []int{50, 200, 500, 1000})
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderExp4(rows))
	}
	if want("5") || want("6") {
		rows, err := experiments.RunExp56(cfg)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderExp56(rows))
	}
}
