// Command galo is the command-line front end of the GALO reproduction: it
// generates the evaluation databases, runs offline learning, re-optimizes
// queries online, inspects the knowledge base and serves it over HTTP.
//
// Usage:
//
//	galo learn   -workload tpcds|client [-scale 0.2] [-queries N] [-kb kb.nt]
//	galo reopt   -workload tpcds|client -kb kb.nt [-query "SELECT ..."] [-name TPCDS.Q09] [-exec-workers N]
//	galo kb      -kb kb.nt
//	galo serve   -kb kb.nt [-addr :3030] [-online] [-shards N] [-data-dir DIR] [-sync always|interval|never]
//	             [-exec-workers N] [-exec-mem-budget 256MB] [-tenant-namespaces] [-tenant-share] [-max-tenants N]
//	             [-fleet "u1,u2;u3,u4"] [-fleet-attempts N] [-fleet-hedge D] [-fleet-rebalance]
//	galo shard   -kb kb.nt -shard I -shards N [-addr 127.0.0.1:3031]
//	galo trace   [-trace bursty|steady] [-tenants N] [-arrivals N] [-speedup X] [-target URL]
//	galo explain -workload tpcds|client [-query "SELECT ..."]
//
// -workload also accepts the zoo scenarios (ohlc, joblike, trace): adversarial
// workloads whose generators build a deterministic estimation hazard in
// (stale histograms, correlated join columns, per-tenant type skew) and whose
// hazard queries stand in for the workload query list.
//
// serve exposes the re-optimization HTTP API (see `galo help` for example
// requests): POST /reopt re-optimizes SQL against the knowledge base,
// POST /query answers SPARQL, GET /stats reports serving counters, and
// -online promotes templates from misestimated runs into new KB epochs
// while serving. -shards splits the knowledge base across N independent
// epoch-snapshot shards (probes fan out only to the shards their fragment
// signatures route to), and -probe-budget/-max-inflight turn on admission
// control: /reopt answers 429 when a client's probe budget is spent or the
// matcher is saturated. -data-dir makes the knowledge base durable — every
// epoch publication is written to a per-shard write-ahead log (fsync policy
// -sync) and compacted into snapshots, and a restart over the same directory
// recovers the exact pre-crash epochs with zero relearning. SIGINT/SIGTERM
// drain gracefully: in-flight requests finish, the WAL takes a final fsync.
// -exec-workers N runs validated executions on N exchange workers (large
// scans partition across the pool; simulated costs are unchanged), and
// -exec-mem-budget caps the estimated peak intermediate residency of
// concurrent executions — over-budget plans queue or degrade to serial.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"galo"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "learn":
		err = runLearn(args)
	case "reopt":
		err = runReopt(args)
	case "kb":
		err = runKB(args)
	case "serve":
		err = runServe(args)
	case "shard":
		err = runShard(args)
	case "trace":
		err = runTrace(args)
	case "explain":
		err = runExplain(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "galo: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "galo:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `galo — guided automated learning for query workload re-optimization

commands:
  learn    run offline learning over a workload and save the knowledge base
  reopt    re-optimize queries online against a knowledge base
  kb       list the templates stored in a knowledge base
  serve    run the re-optimization HTTP service over a knowledge base
  shard    serve one knowledge base shard for a remote fleet (see serve -fleet)
  trace    replay a deterministic multi-tenant arrival trace against /reopt
  explain  show the optimizer's plan for a query without GALO

the serve API (default address :3030):
  # re-optimize a query; add "execute": true for validated simulated timings
  curl -s localhost:3030/reopt -d '{"sql": "SELECT ss_quantity FROM store_sales, date_dim WHERE ss_sold_date_sk = d_date_sk", "execute": true}'

  # SPARQL against the knowledge base (the paper's Fuseki role)
  curl -s localhost:3030/query --data-urlencode 'query=SELECT ?s WHERE { ?s <http://galo/qep/property/hasPopType> "HSJOIN" . }'

  # serving counters: KB epoch/size, per-shard epochs and probe fan-out,
  # cache and probe-dedup hits, admission backpressure, online learning
  curl -s localhost:3030/stats

  with -online, executed queries whose plans misestimate cardinalities are
  analyzed in the background and winning rewrites are published into the
  next knowledge base epoch — no batch relearn, no restart.

  with -shards N, the knowledge base splits across N independent
  epoch-snapshot shards: each template lives in exactly one shard and a
  plan's probes fan out only to the shards its fragment signatures route
  to, so a publication on one shard never invalidates another's cache.

  with -probe-budget / -max-inflight, /reopt sheds load with 429 when a
  client's probe budget is exhausted or the matcher is saturated; the
  backpressure counters appear under "admission" in /stats. Per-client
  request/probe/throttle counters appear as rows under "tenancy".

  with -tenant-namespaces, each X-Galo-Client identity gets its own
  knowledge base namespace: templates seeded into one tenant's namespace
  never match another tenant's queries. -tenant-share falls back to the
  shared knowledge base when a tenant's own namespace has no match, and
  -max-tenants bounds the tracked identities (extras share one overflow
  row, so counter sums stay exact).

  # replay a bursty 4-tenant trace against an in-process trace-workload
  # server with a per-tenant probe budget of 8
  galo trace -tenants 4 -arrivals 128 -probe-budget 8

  with -exec-workers N, validated executions ("execute": true) run each
  eligible plan segment on N exchange workers — large scans split into
  contiguous partitions, hash-join builds partition across the pool — with
  byte-identical simulated costs and results; -exec-mem-budget SIZE (e.g.
  256MB) admission-controls concurrent executions against their estimated
  peak intermediate residency: executions past the budget queue, and a plan
  bigger than the whole budget runs alone and serially. Worker, shared-scan
  and governor counters appear under "executor" in /stats.

  # serve with 4 exchange workers under a 256MB residency budget
  galo serve -kb kb.nt -exec-workers 4 -exec-mem-budget 256MB

  with -fleet "u1,u2;u3,u4", the knowledge base lives in remote "galo shard"
  processes instead of this one: shard endpoint groups are separated by ';'
  and replicas within a group by ','. Probes route through a fault-tolerant
  gateway — per-probe deadlines, capped exponential backoff with jitter,
  replica failover on timeout/5xx, optional hedging (-fleet-hedge 50ms) and
  a per-replica circuit breaker — and its counters appear under "fleet" in
  /stats. -fleet-rebalance watches per-shard probe skew and migrates hot
  templates between shards with the two-epoch protocol (copy, dual-route,
  cut over, drop) so no probe ever misses mid-migration.

  # a two-shard fleet, one replica each, and the gateway in front
  galo learn -kb kb.nt
  galo shard -kb kb.nt -shard 0 -shards 2 -addr 127.0.0.1:3031 &
  galo shard -kb kb.nt -shard 1 -shards 2 -addr 127.0.0.1:3032 &
  galo serve -fleet "http://127.0.0.1:3031;http://127.0.0.1:3032"

  with -data-dir, every knowledge base epoch is written to a per-shard
  write-ahead log and compacted into snapshots; kill the process however you
  like and restart it over the same directory — it recovers the exact
  pre-crash templates and epochs (no relearning) and -kb is ignored. -sync
  picks the fsync policy (always / interval / never); durability counters
  and recovery details appear under "durability" in /stats, and /healthz
  reports "degraded" if a disk error drops the server to in-memory mode.`)
}

type workloadFlags struct {
	workload string
	scale    float64
	seed     int64
	queries  int
}

func addWorkloadFlags(fs *flag.FlagSet) *workloadFlags {
	wf := &workloadFlags{}
	fs.StringVar(&wf.workload, "workload", "tpcds", "workload: tpcds, client, or a zoo scenario (ohlc, joblike, trace)")
	fs.Float64Var(&wf.scale, "scale", 0.2, "data scale factor")
	fs.Int64Var(&wf.seed, "seed", 20190522, "generation seed (0 = the workload's default)")
	fs.IntVar(&wf.queries, "queries", 0, "limit the number of workload queries (0 = all)")
	return wf
}

func (wf *workloadFlags) load() (*galo.Database, []*galo.Query, error) {
	switch strings.ToLower(wf.workload) {
	case "tpcds":
		db, err := galo.GenerateTPCDS(galo.TPCDSOptions{Seed: wf.seed, Scale: wf.scale, Hazards: true})
		if err != nil {
			return nil, nil, err
		}
		// The wide-range Figure 8 variants ride along after the -queries
		// limit: their date ranges depend on the generated calendar, and they
		// are the workload's deterministic misestimation hazard.
		qs := append(limit(galo.TPCDSQueries(), wf.queries), galo.Fig8WideVariants(db, 4)...)
		return db, qs, nil
	case "client":
		db, err := galo.GenerateClient(galo.ClientOptions{Seed: wf.seed, Scale: wf.scale, Hazards: true})
		if err != nil {
			return nil, nil, err
		}
		return db, limit(galo.ClientQueries(), wf.queries), nil
	default:
		sc, ok := galo.ScenarioByName(strings.ToLower(wf.workload))
		if !ok {
			return nil, nil, fmt.Errorf("unknown workload %q (want tpcds, client, ohlc, joblike or trace)", wf.workload)
		}
		gen := sc.DefaultGen()
		if wf.seed != 0 {
			gen.Seed = wf.seed
		}
		gen.Scale = wf.scale
		db, err := sc.Generate(gen)
		if err != nil {
			return nil, nil, err
		}
		return db, sc.HazardQueries(db, wf.queries), nil
	}
}

func limit(qs []*galo.Query, n int) []*galo.Query {
	if n > 0 && n < len(qs) {
		return qs[:n]
	}
	return qs
}

// execFlags holds the parallel-executor knobs shared by reopt and serve.
type execFlags struct {
	workers   int
	memBudget string
}

func addExecFlags(fs *flag.FlagSet) *execFlags {
	ef := &execFlags{}
	fs.IntVar(&ef.workers, "exec-workers", 0, "exchange workers per query execution; 0 or 1 = serial")
	fs.StringVar(&ef.memBudget, "exec-mem-budget", "", "peak-residency budget for concurrent executions, e.g. 256MB or 1GB; empty = ungoverned")
	return ef
}

// options translates the flags into the Config.Exec value.
func (ef *execFlags) options() (galo.ExecOptions, error) {
	opts := galo.ExecOptions{Workers: ef.workers}
	if ef.memBudget != "" {
		b, err := parseByteSize(ef.memBudget)
		if err != nil {
			return opts, fmt.Errorf("-exec-mem-budget: %w", err)
		}
		opts.MemBudgetBytes = b
	}
	return opts, nil
}

// parseByteSize parses a human-readable byte size: a plain integer is bytes,
// and KB/MB/GB (or K/M/G) suffixes scale by 1024.
func parseByteSize(s string) (int64, error) {
	t := strings.ToUpper(strings.TrimSpace(s))
	shift := 0
	switch {
	case strings.HasSuffix(t, "GB"), strings.HasSuffix(t, "G"):
		shift = 30
	case strings.HasSuffix(t, "MB"), strings.HasSuffix(t, "M"):
		shift = 20
	case strings.HasSuffix(t, "KB"), strings.HasSuffix(t, "K"):
		shift = 10
	}
	t = strings.TrimRight(t, "KMGB")
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid size %q (want e.g. 512, 64KB, 256MB, 1GB)", s)
	}
	if shift > 0 && n > (1<<62)>>shift {
		return 0, fmt.Errorf("size %q overflows", s)
	}
	return n << shift, nil
}

func runLearn(args []string) error {
	fs := flag.NewFlagSet("learn", flag.ExitOnError)
	wf := addWorkloadFlags(fs)
	kbPath := fs.String("kb", "kb.nt", "path to write the knowledge base (N-Triples)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	db, queries, err := wf.load()
	if err != nil {
		return err
	}
	cfg := galo.DefaultConfig()
	cfg.Learning.Workload = wf.workload
	sys := galo.NewSystem(db, cfg)
	fmt.Printf("learning over %d %s queries (scale %.2f)...\n", len(queries), wf.workload, wf.scale)
	report, err := sys.Learn(queries)
	if err != nil {
		return err
	}
	fmt.Printf("analyzed %d queries / %d sub-queries, learned %d problem-pattern templates (avg improvement %.0f%%)\n",
		report.QueriesAnalyzed, report.SubQueriesAnalyzed, report.TemplatesAdded, report.AvgImprovement*100)
	if err := sys.SaveKB(*kbPath); err != nil {
		return err
	}
	fmt.Printf("knowledge base written to %s\n", *kbPath)
	return nil
}

func runReopt(args []string) error {
	fs := flag.NewFlagSet("reopt", flag.ExitOnError)
	wf := addWorkloadFlags(fs)
	kbPath := fs.String("kb", "kb.nt", "knowledge base to match against")
	queryText := fs.String("query", "", "SQL text of a single query to re-optimize")
	queryName := fs.String("name", "", "name of a workload query to re-optimize (e.g. TPCDS.Q09)")
	shards := fs.Int("shards", 1, "number of knowledge base shards to load into")
	ef := addExecFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	db, queries, err := wf.load()
	if err != nil {
		return err
	}
	cfg := galo.DefaultConfig()
	cfg.Shards = *shards
	if cfg.Exec, err = ef.options(); err != nil {
		return err
	}
	sys := galo.NewSystem(db, cfg)
	if err := sys.LoadKB(*kbPath); err != nil {
		return err
	}
	targets := queries
	if *queryText != "" {
		q, err := galo.ParseSQL(*queryText)
		if err != nil {
			return err
		}
		q.Name = "ADHOC"
		targets = []*galo.Query{q}
	} else if *queryName != "" {
		targets = nil
		for _, q := range queries {
			if strings.EqualFold(q.Name, *queryName) {
				targets = []*galo.Query{q}
			}
		}
		if len(targets) == 0 {
			return fmt.Errorf("query %q not found in the %s workload", *queryName, wf.workload)
		}
	}
	outcomes, summary, err := sys.ReoptimizeWorkload(targets)
	if err != nil {
		return err
	}
	for _, o := range outcomes {
		status := "no match"
		switch {
		case o.Applied:
			status = fmt.Sprintf("rewritten (%d rewrites), %.1f ms -> %.1f ms (%.0f%% faster)",
				o.Rewrites, o.OriginalMillis, o.GaloMillis, o.Improvement()*100)
		case o.Matched:
			status = "matched, rewrite not kept (no runtime benefit in this context)"
		}
		fmt.Printf("%-14s %s\n", o.Query, status)
	}
	fmt.Printf("\n%d/%d queries matched, %d rewrites kept; average improvement %.0f%%\n",
		summary.Matched, summary.Queries, summary.Applied, summary.AvgImprovement*100)
	return nil
}

func runKB(args []string) error {
	fs := flag.NewFlagSet("kb", flag.ExitOnError)
	kbPath := fs.String("kb", "kb.nt", "knowledge base to inspect")
	if err := fs.Parse(args); err != nil {
		return err
	}
	data, err := os.ReadFile(*kbPath)
	if err != nil {
		return err
	}
	knowledge := galo.NewKnowledgeBase()
	if err := knowledge.LoadNTriples(string(data)); err != nil {
		return err
	}
	fmt.Printf("%d problem-pattern templates\n\n", knowledge.Size())
	for _, t := range knowledge.Templates() {
		fmt.Printf("template %s  (source %s/%s, %d joins, improvement %.0f%%)\n",
			t.ID, t.SourceWorkload, t.SourceQuery, t.Joins, t.Improvement*100)
		fmt.Printf("  problem: %s\n", t.Problem.Signature())
	}
	return nil
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	kbPath := fs.String("kb", "kb.nt", "knowledge base to serve")
	addr := fs.String("addr", ":3030", "listen address")
	online := fs.Bool("online", false, "learn incrementally from executed queries that misestimate")
	shards := fs.Int("shards", 1, "number of knowledge base shards (templates partition by problem-signature prefix)")
	probeBudget := fs.Int("probe-budget", 0, "per-client KB-probe budget per second on /reopt; 0 disables admission control")
	maxInflight := fs.Int("max-inflight", 0, "max concurrent /reopt requests before load shedding; 0 = unlimited")
	tenantNS := fs.Bool("tenant-namespaces", false, "give each X-Galo-Client identity its own knowledge base namespace")
	tenantShare := fs.Bool("tenant-share", false, "with -tenant-namespaces, fall back to the shared knowledge base when a tenant's namespace has no match")
	maxTenants := fs.Int("max-tenants", 0, "bound on tracked tenant identities; extra identities share one overflow row (0 = default 256)")
	fleetSpec := fs.String("fleet", "", "remote shard fleet: ';'-separated shard groups of ','-separated replica URLs (e.g. \"http://h1:3031,http://h2:3031;http://h3:3032\"); empty = in-process KB")
	fleetTimeout := fs.Duration("fleet-probe-timeout", 0, "fleet: per-probe deadline (0 = default 2s)")
	fleetAttempts := fs.Int("fleet-attempts", 0, "fleet: attempts per probe across replicas (0 = default 3)")
	fleetHedge := fs.Duration("fleet-hedge", 0, "fleet: send a hedged probe to another replica after this long (0 = hedging off)")
	fleetRebalance := fs.Bool("fleet-rebalance", false, "fleet: migrate hot templates between shards when probe skew exceeds 2x")
	fleetRebalanceEvery := fs.Duration("fleet-rebalance-interval", 0, "fleet: rebalancer window length (0 = default 5s)")
	dataDir := fs.String("data-dir", "", "directory for the knowledge base WAL + snapshots; restart recovers the pre-crash epochs (empty = in-memory only)")
	syncMode := fs.String("sync", "interval", "WAL durability: always (fsync per publication), interval (batched fsync), never")
	snapshotEvery := fs.Uint64("snapshot-every", 0, "compact a shard's WAL into a snapshot every N epochs (0 = default 4096)")
	ef := addExecFlags(fs)
	wf := addWorkloadFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	db, _, err := wf.load()
	if err != nil {
		return err
	}
	cfg := galo.DefaultConfig()
	cfg.Shards = *shards
	cfg.Admission.ProbeBudget = *probeBudget
	cfg.Admission.MaxConcurrent = *maxInflight
	cfg.Tenancy = galo.TenancyOptions{Enabled: *tenantNS, ShareTemplates: *tenantShare, MaxTenants: *maxTenants}
	cfg.DataDir = *dataDir
	cfg.SnapshotEvery = *snapshotEvery
	if cfg.Exec, err = ef.options(); err != nil {
		return err
	}
	if cfg.Sync, err = galo.ParseSyncPolicy(*syncMode); err != nil {
		return err
	}
	if *online {
		cfg.Online = galo.DefaultOnlineOptions()
	}
	if *fleetSpec != "" {
		shardGroups, err := parseFleetSpec(*fleetSpec)
		if err != nil {
			return err
		}
		cfg.Shards = len(shardGroups)
		cfg.Fleet = galo.FleetOptions{
			Shards: shardGroups,
			Policy: galo.FleetPolicy{
				ProbeTimeout: *fleetTimeout,
				MaxAttempts:  *fleetAttempts,
				HedgeAfter:   *fleetHedge,
			},
			Rebalance: galo.RebalanceOptions{
				Enabled:  *fleetRebalance,
				Interval: *fleetRebalanceEvery,
			},
		}
	}
	sys := galo.NewSystem(db, cfg)
	defer sys.Close()

	recovered, err := sys.OpenDataDir()
	if err != nil {
		return err
	}
	switch {
	case *fleetSpec != "":
		// The remote shard processes hold the knowledge base; nothing to load
		// locally — probes route through the gateway.
		fmt.Printf("routing knowledge base probes to a %d-shard remote fleet\n", len(cfg.Fleet.Shards))
	case recovered != nil && recovered.Recovered:
		// The data directory holds the durable knowledge base — it wins over
		// -kb, whose file would either duplicate or roll back the recovered
		// epochs.
		detail := "same shard layout, epoch lineage continues"
		if recovered.Rerouted {
			detail = "shard layout changed, templates re-routed into a fresh lineage"
		}
		fmt.Printf("recovered %d templates from %s (%s)\n", recovered.Templates, *dataDir, detail)
	default:
		if err := sys.LoadKB(*kbPath); err != nil {
			return err
		}
		if recovered != nil {
			fmt.Printf("initialized data dir %s (sync=%s)\n", *dataDir, *syncMode)
		}
	}

	mode := "offline KB"
	if *online {
		mode = "online learning enabled"
	}
	fmt.Printf("serving re-optimization API (%d templates, %d shard(s), %s) on %s — POST {\"sql\": ...} to /reopt, SPARQL to /query, stats at /stats\n",
		sys.KB().Size(), sys.KB().Shards(), mode, *addr)

	// SIGINT/SIGTERM drain gracefully: in-flight requests finish, new ones
	// get 503 + Retry-After, the online learner flushes, and the WAL takes a
	// final fsync before exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- sys.Serve(*addr) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
		stop()
		fmt.Println("shutting down: draining connections and flushing the knowledge base...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := sys.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("graceful shutdown: %w", err)
		}
		return <-serveErr
	}
}

// parseFleetSpec parses the -fleet value: shard endpoint groups separated by
// ';', replica URLs within a group by ','.
func parseFleetSpec(spec string) ([][]string, error) {
	var shards [][]string
	for i, group := range strings.Split(spec, ";") {
		var replicas []string
		for _, u := range strings.Split(group, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
				return nil, fmt.Errorf("-fleet: replica %q of shard %d is not an http(s) URL", u, i)
			}
			replicas = append(replicas, strings.TrimRight(u, "/"))
		}
		if len(replicas) == 0 {
			return nil, fmt.Errorf("-fleet: shard %d has no replica URLs", i)
		}
		shards = append(shards, replicas)
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("-fleet: no shard groups in %q", spec)
	}
	return shards, nil
}

// runShard serves one knowledge base shard for a remote fleet: it loads the
// full KB dump, keeps only the templates that route to -shard under the
// -shards layout (the same shape-prefix routing the gateway uses), and
// serves them over the fleet shard HTTP surface (/query /data /version
// /shape /healthz). Every replica of a shard runs this same command.
func runShard(args []string) error {
	fs := flag.NewFlagSet("shard", flag.ExitOnError)
	kbPath := fs.String("kb", "kb.nt", "full knowledge base dump to slice the shard from")
	addr := fs.String("addr", "127.0.0.1:0", "listen address (use a fixed port so the gateway can find it)")
	shard := fs.Int("shard", 0, "this shard's index in [0, shards)")
	shards := fs.Int("shards", 1, "total number of shards in the fleet")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shard < 0 || *shard >= *shards {
		return fmt.Errorf("-shard %d out of range for -shards %d", *shard, *shards)
	}
	data, err := os.ReadFile(*kbPath)
	if err != nil {
		return err
	}
	slice, err := galo.ShardSlice(string(data), *shard, *shards)
	if err != nil {
		return err
	}
	knowledge := galo.NewKnowledgeBase()
	if err := knowledge.LoadNTriples(slice); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: galo.NewShardServer(knowledge)}
	fmt.Printf("shard %d/%d serving %d templates on http://%s\n",
		*shard, *shards, knowledge.Size(), ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
		stop()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-serveErr; err != http.ErrServerClosed {
			return err
		}
		return nil
	}
}

func runExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	wf := addWorkloadFlags(fs)
	queryText := fs.String("query", "", "SQL text to explain (defaults to the first workload query)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	db, queries, err := wf.load()
	if err != nil {
		return err
	}
	sys := galo.NewSystem(db, galo.DefaultConfig())
	q := queries[0]
	if *queryText != "" {
		if q, err = galo.ParseSQL(*queryText); err != nil {
			return err
		}
		q.Name = "ADHOC"
	}
	plan, err := sys.Optimize(q)
	if err != nil {
		return err
	}
	fmt.Print(galo.FormatPlan(plan))
	return nil
}

// runTrace replays a deterministic multi-tenant arrival trace against a
// re-optimization server: each arrival posts its query to /reopt under its
// tenant's X-Galo-Client identity. With no -target, it builds the trace
// workload and serves it in-process, so one command demonstrates per-tenant
// admission control and namespaces end to end.
func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	profile := fs.String("trace", "bursty", "arrival profile: bursty or steady")
	tenants := fs.Int("tenants", 4, "number of tenant identities")
	arrivals := fs.Int("arrivals", 128, "total number of requests")
	burstLen := fs.Int("burst-len", 16, "requests per burst (bursty profile)")
	speedup := fs.Float64("speedup", 10, "replay speedup over the schedule's wall clock; <= 0 fires everything at once")
	seed := fs.Int64("seed", 20190803, "trace schedule seed")
	target := fs.String("target", "", "base URL of a running galo serve (empty = serve the trace workload in-process)")
	scale := fs.Float64("scale", 0.25, "data scale for the in-process server")
	probeBudget := fs.Int("probe-budget", 8, "in-process server: per-client probe budget (0 disables admission control)")
	maxInflight := fs.Int("max-inflight", 0, "in-process server: max concurrent /reopt requests (0 = unlimited)")
	tenantNS := fs.Bool("tenant-namespaces", false, "in-process server: per-tenant knowledge base namespaces")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *profile != "bursty" && *profile != "steady" {
		return fmt.Errorf("unknown -trace profile %q (want bursty or steady)", *profile)
	}

	url := *target
	if url == "" {
		sc, _ := galo.ScenarioByName("trace")
		gen := sc.DefaultGen()
		gen.Scale = *scale
		db, err := sc.Generate(gen)
		if err != nil {
			return err
		}
		cfg := galo.DefaultConfig()
		cfg.Admission.ProbeBudget = *probeBudget
		cfg.Admission.MaxConcurrent = *maxInflight
		cfg.Tenancy = galo.TenancyOptions{Enabled: *tenantNS}
		sys := galo.NewSystem(db, cfg)
		defer sys.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: sys.APIHandler()}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		url = "http://" + ln.Addr().String()
		fmt.Printf("serving the trace workload in-process on %s (probe budget %d)\n", url, *probeBudget)
	}

	schedule := galo.TraceArrivals(galo.TraceOptions{
		Seed: *seed, Tenants: *tenants, Arrivals: *arrivals,
		Profile: *profile, BurstLen: *burstLen,
	})
	type tally struct{ ok, throttled, failed int }
	perTenant := map[string]*tally{}
	var latencies []float64
	var mu sync.Mutex
	galo.ReplayTrace(schedule, *speedup, func(a galo.TraceArrival) {
		body, _ := json.Marshal(galo.ReoptRequest{SQL: a.Query.SQL(), Name: a.Query.Name})
		req, err := http.NewRequest(http.MethodPost, url+"/reopt", bytes.NewReader(body))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Galo-Client", a.Tenant)
		start := time.Now()
		resp, err := http.DefaultClient.Do(req)
		elapsed := float64(time.Since(start).Microseconds()) / 1000
		mu.Lock()
		defer mu.Unlock()
		tl := perTenant[a.Tenant]
		if tl == nil {
			tl = &tally{}
			perTenant[a.Tenant] = tl
		}
		if err != nil {
			tl.failed++
			return
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			tl.ok++
			latencies = append(latencies, elapsed)
		case http.StatusTooManyRequests:
			tl.throttled++
		default:
			tl.failed++
		}
	})

	names := make([]string, 0, len(perTenant))
	for name := range perTenant {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("\n%-12s %8s %10s %8s\n", "tenant", "answered", "throttled", "failed")
	for _, name := range names {
		tl := perTenant[name]
		fmt.Printf("%-12s %8d %10d %8d\n", name, tl.ok, tl.throttled, tl.failed)
	}
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		quantile := func(q float64) float64 { return latencies[int(q*float64(len(latencies)-1))] }
		fmt.Printf("\n%s profile: %d arrivals, answered latency p50 %.1f ms, p99 %.1f ms\n",
			*profile, len(schedule), quantile(0.5), quantile(0.99))
	}
	return nil
}
