// Workload zoo trajectory: TestEmitBenchWorkloadsJSON measures, for every
// zoo scenario, the per-scan q-error over its hazard queries before and
// after the scenario's statistical remedy, plus the multi-tenant serving
// latency of a bursty arrival trace against an uncontended steady replay,
// and records the results in BENCH_workloads.json so future PRs can track
// how estimator and serving changes move the adversarial scenarios.
package galo_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"galo"
	"galo/internal/core"
	"galo/internal/experiments"
	"galo/internal/workload/trace"
)

// traceLatencies replays an arrival trace against a /reopt endpoint and
// returns the sorted answered-request latencies in milliseconds.
func traceLatencies(t *testing.T, url string, arrivals []trace.Arrival, speedup float64) []float64 {
	t.Helper()
	var mu sync.Mutex
	var lat []float64
	trace.Replay(arrivals, speedup, func(a trace.Arrival) {
		payload, _ := json.Marshal(core.ReoptRequest{SQL: a.Query.SQL(), Name: a.Query.Name})
		req, err := http.NewRequest(http.MethodPost, url+"/reopt", bytes.NewReader(payload))
		if err != nil {
			t.Error(err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Galo-Client", a.Tenant)
		start := time.Now()
		resp, err := http.DefaultClient.Do(req)
		elapsed := float64(time.Since(start).Microseconds()) / 1000
		if err != nil {
			t.Error(err)
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s %s: status %d", a.Tenant, a.Query.Name, resp.StatusCode)
			return
		}
		mu.Lock()
		lat = append(lat, elapsed)
		mu.Unlock()
	})
	sort.Float64s(lat)
	return lat
}

// TestEmitBenchWorkloadsJSON writes BENCH_workloads.json. Only runs when
// GALO_BENCH_JSON=1 (CI's bench-emit step sets it).
func TestEmitBenchWorkloadsJSON(t *testing.T) {
	if os.Getenv("GALO_BENCH_JSON") == "" {
		t.Skip("set GALO_BENCH_JSON=1 to (re)write BENCH_workloads.json")
	}

	// Estimation hazards: every scenario's pre/post-learning q-error. The
	// emit enforces the same gates as the tier-1 test (experiments
	// TestZooHazardGates) so a regression cannot silently ship a benchmark
	// file that contradicts them.
	cfg := experiments.DefaultConfig()
	cfg.WorkloadScales = map[string]float64{"ohlc": 0.15, "joblike": 0.15, "trace": 0.15}
	zoo, err := experiments.RunZoo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scenarios := make([]map[string]any, 0, len(zoo))
	for _, r := range zoo {
		if r.PreP90 <= 10 {
			t.Errorf("%s: pre-learning q-error p90 = %.2f, want > 10", r.Scenario, r.PreP90)
		}
		if r.PostP90 >= 2 {
			t.Errorf("%s: post-learning q-error p90 = %.2f, want < 2", r.Scenario, r.PostP90)
		}
		scenarios = append(scenarios, map[string]any{
			"scenario":         r.Scenario,
			"hazard":           r.Hazard,
			"scans":            r.Scans,
			"pre_median_qerr":  round3(r.PreMedian),
			"pre_p90_qerr":     round3(r.PreP90),
			"pre_max_qerr":     round3(r.PreMax),
			"post_median_qerr": round3(r.PostMedian),
			"post_p90_qerr":    round3(r.PostP90),
			"post_max_qerr":    round3(r.PostMax),
		})
	}

	// Multi-tenant serving latency: the same request mix replayed bursty
	// (overlapping per-tenant bursts contend for the matcher) vs steady
	// (spaced arrivals, the uncontended control) against one trace-workload
	// server with no admission limits — pure contention, no 429s.
	gen := trace.New().DefaultGen()
	gen.Scale = 0.25
	db, err := trace.New().Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	sys := galo.NewSystem(db, galo.DefaultConfig())
	defer sys.Close()
	srv := httptest.NewServer(sys.APIHandler())
	defer srv.Close()

	const (
		tenants     = 8
		arrivalsN   = 192
		traceSeed   = 20190803
		replaySpeed = 20
	)
	bursty := traceLatencies(t, srv.URL, trace.Arrivals(trace.TraceOptions{
		Seed: traceSeed, Tenants: tenants, Arrivals: arrivalsN, Profile: trace.ProfileBursty,
	}), replaySpeed)
	steady := traceLatencies(t, srv.URL, trace.Arrivals(trace.TraceOptions{
		Seed: traceSeed, Tenants: tenants, Arrivals: arrivalsN, Profile: trace.ProfileSteady,
	}), replaySpeed)
	latRow := func(lat []float64) map[string]any {
		return map[string]any{
			"answered":  len(lat),
			"p50_ms":    round3(quantile(lat, 0.5)),
			"p99_ms":    round3(quantile(lat, 0.99)),
			"max_ms":    round3(quantile(lat, 1.0)),
			"tenants":   tenants,
			"arrivals":  arrivalsN,
			"speedup_x": replaySpeed,
		}
	}

	doc := map[string]any{
		"benchmark": "workload zoo: per-scenario estimation hazard (q-error pre/post remedy) and multi-tenant /reopt latency (bursty vs steady arrivals)",
		"note":      "q-error = max(est/act, act/est) per base-table scan over each scenario's hazard queries; gates: pre p90 > 10 (the hazard fires), post p90 < 2 (the remedy works). Latency rows replay the same multi-tenant request mix against one serving process: bursty overlaps per-tenant bursts, steady is the uncontended control.",
		"scenarios": scenarios,
		"multi_tenant_latency": map[string]any{
			"bursty": latRow(bursty),
			"steady": latRow(steady),
		},
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_workloads.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_workloads.json:\n%s", data)
}
