// guideline_tuning shows GALO used the way the paper's Figure 1 describes:
// as a tool for a performance engineer debugging one problematic query. It
// plans the client workload's query #8 (the OPEN_IN / ENTRY_IDX join whose
// manual fix took the runtime from nine hours to five minutes), learns a
// rewrite for it, prints the OPTGUIDELINES document a DBA would submit with
// the query, and shows the plan change and runtime effect.
package main

import (
	"fmt"
	"log"

	"galo"
)

func main() {
	db, err := galo.GenerateClient(galo.ClientOptions{Seed: 8, Scale: 0.15, Hazards: true})
	if err != nil {
		log.Fatal(err)
	}
	cfg := galo.DefaultConfig()
	cfg.Learning.Workload = "client"
	sys := galo.NewSystem(db, cfg)

	// The problem query: Figure 1's MSJOIN between OPEN_IN and ENTRY_IDX.
	problem := galo.ClientQueries()[7] // CLIENT.Q08
	fmt.Printf("problem query %s:\n  %s\n\n", problem.Name, problem.SQL())

	plan, err := sys.Optimize(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== plan chosen by the cost-based optimizer ===")
	fmt.Print(galo.FormatPlan(plan))

	// Offline analysis of just this query (what the learning engine would do
	// overnight for the whole workload).
	report, err := sys.Learn([]*galo.Query{problem})
	if err != nil {
		log.Fatal(err)
	}
	if report.TemplatesAdded == 0 {
		fmt.Println("the optimizer's plan could not be beaten for this query")
		return
	}
	fmt.Printf("\nlearning found %d rewrite(s); knowledge base now holds %d template(s)\n",
		report.TemplatesAdded, sys.KB().Size())

	res, err := sys.Reoptimize(problem)
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Matches) == 0 {
		fmt.Println("no template matched online")
		return
	}
	xml, _ := res.Guidelines.XML()
	fmt.Println("\n=== guideline document to submit with the query ===")
	fmt.Println(xml)
	fmt.Println("\n=== plan after re-optimization with the guideline ===")
	fmt.Print(galo.FormatPlan(res.ReoptimizedPlan))

	before, err := sys.Execute(res.OriginalPlan, problem)
	if err != nil {
		log.Fatal(err)
	}
	after, err := sys.Execute(res.ReoptimizedPlan, problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated runtime: %.1f ms -> %.1f ms\n", before.Stats.ElapsedMillis, after.Stats.ElapsedMillis)
}
