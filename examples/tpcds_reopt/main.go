// tpcds_reopt reproduces the shape of the paper's Figure 10a on a scaled-down
// TPC-DS workload: it learns a knowledge base offline over the workload, then
// re-optimizes every query and prints the normalized runtime of each matched
// query (GALO runtime as a percentage of the original runtime, matching
// overhead included).
package main

import (
	"flag"
	"fmt"
	"log"

	"galo"
)

func main() {
	scale := flag.Float64("scale", 0.15, "data scale factor")
	queries := flag.Int("queries", 40, "number of workload queries (99 = full workload)")
	flag.Parse()

	db, err := galo.GenerateTPCDS(galo.TPCDSOptions{Seed: 7, Scale: *scale, Hazards: true})
	if err != nil {
		log.Fatal(err)
	}
	cfg := galo.DefaultConfig()
	cfg.Learning.Workload = "tpcds"
	sys := galo.NewSystem(db, cfg)

	workload := galo.TPCDSQueries()
	if *queries > 0 && *queries < len(workload) {
		workload = workload[:*queries]
	}
	fmt.Printf("offline learning over %d TPC-DS queries...\n", len(workload))
	report, err := sys.Learn(workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("knowledge base: %d templates (avg rewrite improvement %.0f%%)\n\n", report.TemplatesAdded, report.AvgImprovement*100)

	outcomes, summary, err := sys.ReoptimizeWorkload(workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query          original(ms)   GALO(ms)   normalized")
	for _, o := range outcomes {
		if !o.Applied {
			continue
		}
		fmt.Printf("%-14s %12.1f %10.1f   %5.1f%%\n",
			o.Query, o.OriginalMillis, o.GaloMillis, o.GaloMillis/o.OriginalMillis*100)
	}
	fmt.Printf("\n%d of %d queries matched, %d re-optimized; average improvement: %.0f%%\n",
		summary.Matched, summary.Queries, summary.Applied, summary.AvgImprovement*100)
	fmt.Printf("workload runtime: %.1f ms without GALO, %.1f ms with GALO\n",
		summary.TotalOriginal, summary.TotalGalo)
}
