// cross_workload demonstrates the paper's Exp-2 reuse result: problem
// patterns learned over the TPC-DS workload are stored with canonical symbol
// labels, so they match — and repair — queries from the completely different
// client workload without any re-learning. It then walks the workload zoo:
// for each adversarial scenario, it shows the estimation hazard firing under
// default statistics and the scenario's remedy fixing it.
package main

import (
	"fmt"
	"log"

	"galo"
)

func main() {
	// Learn a knowledge base on TPC-DS.
	tpcdsDB, err := galo.GenerateTPCDS(galo.TPCDSOptions{Seed: 11, Scale: 0.12, Hazards: true})
	if err != nil {
		log.Fatal(err)
	}
	tpcdsCfg := galo.DefaultConfig()
	tpcdsCfg.Learning.Workload = "tpcds"
	teacher := galo.NewSystem(tpcdsDB, tpcdsCfg)
	report, err := teacher.Learn(galo.TPCDSQueries()[:30])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned %d templates on the TPC-DS workload\n", report.TemplatesAdded)

	// A different database, a different schema, a different workload — and an
	// empty knowledge base of its own. Import the TPC-DS knowledge.
	clientDB, err := galo.GenerateClient(galo.ClientOptions{Seed: 12, Scale: 0.12, Hazards: true})
	if err != nil {
		log.Fatal(err)
	}
	clientCfg := galo.DefaultConfig()
	clientCfg.Learning.Workload = "client"
	student := galo.NewSystem(clientDB, clientCfg)
	if err := student.ImportKB(teacher.KB()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client system starts with %d imported templates and no learning of its own\n\n", student.KB().Size())

	// Re-optimize the client workload with the borrowed knowledge only.
	outcomes, summary, err := student.ReoptimizeWorkload(galo.ClientQueries()[:40])
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range outcomes {
		if o.Applied {
			fmt.Printf("%-12s rewritten using TPC-DS-learned patterns: %.1f ms -> %.1f ms (%.0f%% faster)\n",
				o.Query, o.OriginalMillis, o.GaloMillis, o.Improvement()*100)
		}
	}
	fmt.Printf("\n%d of %d client queries matched patterns learned on a different workload (%d improved)\n",
		summary.Matched, summary.Queries, summary.Applied)

	// The workload zoo: each scenario builds a different estimation hazard
	// into its data — stale histograms (ohlc), correlated join columns
	// (joblike), per-tenant type skew (trace) — and each carries its own
	// statistical remedy. Pre-learning q-errors show the hazard firing;
	// post-learning q-errors show the remedy working.
	fmt.Println("\nworkload zoo: estimation hazards before and after each scenario's remedy")
	zoo, err := galo.RunZoo(0.15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %-10s %-10s  %s\n", "scenario", "pre p90", "post p90", "hazard")
	for _, r := range zoo {
		fmt.Printf("%-8s %-10.2f %-10.2f  %s\n", r.Scenario, r.PreP90, r.PostP90, r.Hazard)
	}
}
