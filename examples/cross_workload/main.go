// cross_workload demonstrates the paper's Exp-2 reuse result: problem
// patterns learned over the TPC-DS workload are stored with canonical symbol
// labels, so they match — and repair — queries from the completely different
// client workload without any re-learning.
package main

import (
	"fmt"
	"log"

	"galo"
)

func main() {
	// Learn a knowledge base on TPC-DS.
	tpcdsDB, err := galo.GenerateTPCDS(galo.TPCDSOptions{Seed: 11, Scale: 0.12, Hazards: true})
	if err != nil {
		log.Fatal(err)
	}
	tpcdsCfg := galo.DefaultConfig()
	tpcdsCfg.Learning.Workload = "tpcds"
	teacher := galo.NewSystem(tpcdsDB, tpcdsCfg)
	report, err := teacher.Learn(galo.TPCDSQueries()[:30])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned %d templates on the TPC-DS workload\n", report.TemplatesAdded)

	// A different database, a different schema, a different workload — and an
	// empty knowledge base of its own. Import the TPC-DS knowledge.
	clientDB, err := galo.GenerateClient(galo.ClientOptions{Seed: 12, Scale: 0.12, Hazards: true})
	if err != nil {
		log.Fatal(err)
	}
	clientCfg := galo.DefaultConfig()
	clientCfg.Learning.Workload = "client"
	student := galo.NewSystem(clientDB, clientCfg)
	if err := student.ImportKB(teacher.KB()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client system starts with %d imported templates and no learning of its own\n\n", student.KB().Size())

	// Re-optimize the client workload with the borrowed knowledge only.
	outcomes, summary, err := student.ReoptimizeWorkload(galo.ClientQueries()[:40])
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range outcomes {
		if o.Applied {
			fmt.Printf("%-12s rewritten using TPC-DS-learned patterns: %.1f ms -> %.1f ms (%.0f%% faster)\n",
				o.Query, o.OriginalMillis, o.GaloMillis, o.Improvement()*100)
		}
	}
	fmt.Printf("\n%d of %d client queries matched patterns learned on a different workload (%d improved)\n",
		summary.Matched, summary.Queries, summary.Applied)
}
