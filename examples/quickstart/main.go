// Quickstart: build a small TPC-DS-like database, learn a knowledge base from
// a handful of problem queries, then re-optimize one of them and show the
// before/after plans and runtimes — the full offline + online GALO workflow
// in one file.
package main

import (
	"fmt"
	"log"

	"galo"
)

func main() {
	// 1. A populated database with statistics. Hazards=true installs the
	//    estimation blind spots (stale statistics, mis-configured transfer
	//    rate) that make the optimizer beatable — the paper's premise.
	db, err := galo.GenerateTPCDS(galo.TPCDSOptions{Seed: 1, Scale: 0.15, Hazards: true})
	if err != nil {
		log.Fatal(err)
	}

	// 2. A GALO system over that database.
	cfg := galo.DefaultConfig()
	cfg.Learning.Workload = "tpcds"
	sys := galo.NewSystem(db, cfg)

	// 3. Offline learning over a few workload queries, including the
	//    wide-range Figure 8 variants whose stale-histogram misestimate the
	//    optimizer deterministically falls for.
	workload := append(galo.TPCDSQueries()[8:20], galo.Fig8WideVariants(db, 2)...)
	report, err := sys.Learn(workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned %d problem-pattern templates from %d queries (avg improvement %.0f%%)\n\n",
		report.TemplatesAdded, report.QueriesAnalyzed, report.AvgImprovement*100)

	// 4. Online re-optimization of an incoming query: a fresh wide-range
	//    query the system has not seen (different category, same hazard).
	query := galo.Fig8WideQuery(db)
	query.Name = "QUICKSTART.Q1"

	res, err := sys.Reoptimize(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== plan chosen by the cost-based optimizer ===")
	fmt.Print(galo.FormatPlan(res.OriginalPlan))
	if len(res.Matches) == 0 {
		fmt.Println("no problem pattern matched this query")
		return
	}
	fmt.Printf("\n%d problem pattern(s) matched; guideline document:\n", len(res.Matches))
	xml, _ := res.Guidelines.XML()
	fmt.Println(xml)
	fmt.Println("\n=== plan after GALO re-optimization ===")
	fmt.Print(galo.FormatPlan(res.ReoptimizedPlan))

	// 5. Execute both plans to confirm the improvement.
	before, err := sys.Execute(res.OriginalPlan, query)
	if err != nil {
		log.Fatal(err)
	}
	after, err := sys.Execute(res.ReoptimizedPlan, query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated runtime: %.1f ms -> %.1f ms (%d rows in both cases)\n",
		before.Stats.ElapsedMillis, after.Stats.ElapsedMillis, len(after.Rows))
}
