// Estimate-quality trajectory for the optimizer's statistics layer:
// TestEmitBenchOptimizerJSON measures estimate-vs-actual cardinality error
// (q-error) over a workload sample with and without the ANALYZE histograms,
// and records the result in BENCH_optimizer.json so future PRs can track how
// statistics changes move plan quality.
package galo_test

import (
	"encoding/json"
	"math"
	"os"
	"sort"
	"testing"

	"galo/internal/executor"
	"galo/internal/optimizer"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
	"galo/internal/workload/tpcds"
)

// qErrors optimizes and executes each query, returning the per-scan q-error
// max(est/act, act/est) — the standard cardinality-estimation quality metric.
func qErrors(t *testing.T, opt *optimizer.Optimizer, ex *executor.Executor, queries []*sqlparser.Query) []float64 {
	t.Helper()
	var errs []float64
	for _, q := range queries {
		plan, _, err := opt.Optimize(q)
		if err != nil {
			t.Fatalf("optimize %s: %v", q.Name, err)
		}
		if _, err := ex.Execute(plan, q); err != nil {
			t.Fatalf("execute %s: %v", q.Name, err)
		}
		plan.Root.Walk(func(n *qgm.Node) {
			if !n.Op.IsScan() {
				return
			}
			est := math.Max(n.EstCardinality, 1)
			act := math.Max(n.ActCardinality, 1)
			errs = append(errs, math.Max(est/act, act/est))
		})
	}
	sort.Float64s(errs)
	return errs
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func round3(f float64) float64 { return math.Round(f*1000) / 1000 }

// TestEmitBenchOptimizerJSON writes BENCH_optimizer.json. Only runs when
// GALO_BENCH_JSON=1 (CI's bench-emit step sets it).
func TestEmitBenchOptimizerJSON(t *testing.T) {
	if os.Getenv("GALO_BENCH_JSON") == "" {
		t.Skip("set GALO_BENCH_JSON=1 to (re)write BENCH_optimizer.json")
	}
	// A fresh (hazard-free) database isolates the statistics layer itself:
	// any estimation error left is the estimator's, not staleness.
	db, err := tpcds.Generate(tpcds.GenOptions{Seed: 20190122, Scale: 0.1, Hazards: false})
	if err != nil {
		t.Fatal(err)
	}
	queries := append(tpcds.Queries()[:24], tpcds.Fig8WideVariants(db, 4)...)
	ex := executor.New(db)

	withHist := qErrors(t, optimizer.New(db.Catalog, optimizer.DefaultOptions()), ex, queries)

	// The same database with the histograms stripped: the pre-ANALYZE
	// estimator (min/max interpolation + NDV + System-R constants).
	bareDB, err := tpcds.Generate(tpcds.GenOptions{Seed: 20190122, Scale: 0.1, Hazards: false})
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range bareDB.Catalog.TablesWithStats() {
		for _, cs := range bareDB.Catalog.Stats(tbl).Columns {
			cs.Histogram = nil
		}
	}
	withoutHist := qErrors(t, optimizer.New(bareDB.Catalog, optimizer.DefaultOptions()), executor.New(bareDB), queries)

	row := func(errs []float64) map[string]any {
		return map[string]any{
			"scans":       len(errs),
			"median_qerr": round3(quantile(errs, 0.5)),
			"p90_qerr":    round3(quantile(errs, 0.9)),
			"p99_qerr":    round3(quantile(errs, 0.99)),
			"max_qerr":    round3(errs[len(errs)-1]),
		}
	}
	doc := map[string]any{
		"benchmark":          "scan cardinality estimate vs actual (q-error) over 28 TPC-DS-like queries, fresh statistics",
		"note":               "q-error = max(est/act, act/est) per base-table scan; 1.0 is a perfect estimate. with_histograms uses the ANALYZE equi-depth histograms, without_histograms the pre-ANALYZE min/max interpolation and System-R constants.",
		"with_histograms":    row(withHist),
		"without_histograms": row(withoutHist),
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_optimizer.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_optimizer.json:\n%s", data)
}
